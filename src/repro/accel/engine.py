"""Event-driven dataflow execution engine for the spatial accelerator.

The engine runs an :class:`~repro.accel.program.AcceleratorProgram` both
*functionally* (producing the same architectural state as the CPU would) and
*temporally* (cycle-approximate latency per the paper's Eq. 1/2 with memory
port contention).  Per-node and per-edge latency counters — the hardware
counters of paper §5.2 — are collected during execution and fed back to
MESA's iterative optimizer.

Execution modes mirror the paper's loop-level optimizations (§4.3):

* **barrier** (default): iterations execute back-to-back; iteration *i+1*
  starts when every node of iteration *i* has completed;
* **pipelined**: iterations are initiated every *II* cycles, where *II* is
  bounded below by loop-carried recurrences and memory-port bandwidth;
* **tiled**: ``tile_factor`` copies of the dataflow graph execute
  concurrently on disjoint iterations (Fig. 6), sharing the memory ports.

Functional results are mode-independent (the paper only tiles loops that are
explicitly parallel), so the engine always executes iterations sequentially
for correctness and applies the mode's timing model for cycle counts.

Two execution paths produce bit-identical results:

* the **plan-compiled** path (default) drives each iteration from a
  precompiled :class:`~repro.accel.plan.ExecutionPlan` — operand routing,
  transfer latencies, operation evaluators, and memory descriptors are all
  resolved once per program, and the iteration loop touches only flat lists
  indexed by node id;
* the **interpreter** path (``compiled=False``) walks the configured nodes
  directly, re-deriving every static fact per iteration.  It is the
  executable specification the golden tests in
  ``tests/accel/test_plan_equivalence.py`` compare against.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from ..isa import (
    Instruction,
    MachineState,
    Opcode,
    apply_operation,
    branch_taken,
)
from ..mem import (
    AccessKind,
    LoadOutcome,
    LoadStoreQueue,
    MemoryHierarchy,
    MemoryPorts,
)
from .batch import drive_batched
from .config import AcceleratorConfig
from .counters import ActivityCounters, LatencyCounters
from .interconnect import Interconnect, build_interconnect
from .plan import K_LOOP, K_NODE, N_CONTROL, N_MEMORY, compile_plan
from .program import AcceleratorProgram, ConfiguredNode, Operand, OperandKind

__all__ = ["ExecutionOptions", "AcceleratorRun", "DataflowEngine"]

_LOAD_FORMATS = {
    Opcode.LB: (1, True), Opcode.LBU: (1, False),
    Opcode.LH: (2, True), Opcode.LHU: (2, False),
    Opcode.LW: (4, True), Opcode.FLW: (4, False),
    Opcode.LWU: (4, False), Opcode.LD: (8, True),
}
_STORE_SIZES = {Opcode.SB: 1, Opcode.SH: 2, Opcode.SW: 4, Opcode.FSW: 4,
                Opcode.SD: 8}


@dataclass(frozen=True)
class ExecutionOptions:
    """How the configured loop is driven."""

    pipelined: bool = False
    tile_factor: int = 1
    max_iterations: int = 1_000_000
    #: Ports model; None uses the config's port count.  Use
    #: :meth:`repro.mem.MemoryPorts.ideal` for the Fig. 15 ideal-memory case.
    ports: MemoryPorts | None = None
    #: Loads issue as soon as their address is ready, even past older
    #: stores with unresolved addresses (§4.2: "individual loads can be
    #: performed out-of-order as soon as their addresses are generated").
    #: A later-matching store invalidates the load and the new value must
    #: re-propagate — modeled as a replay penalty on the load's completion.
    speculative_loads: bool = True
    #: Cycles to re-propagate a value after a load invalidation.
    replay_penalty: int = 6
    #: Batched (vectorized-block) drive path: None auto-selects it whenever
    #: the plan's capability analysis accepts the program, True asks for it
    #: explicitly (still falls back — with the reason reported — when the
    #: plan is not batchable), False pins the scalar compiled loop.
    batch: bool | None = None
    #: Iterations per batched block; 0 defers to the ``REPRO_BATCH_BLOCK``
    #: environment variable, then the built-in default (256).
    batch_block: int = 0

    def __post_init__(self) -> None:
        if self.tile_factor < 1:
            raise ValueError("tile_factor must be >= 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.replay_penalty < 0:
            raise ValueError("replay_penalty must be >= 0")
        if self.batch_block < 0:
            raise ValueError("batch_block must be >= 0")


@dataclass
class AcceleratorRun:
    """Result of executing a configured loop region on the fabric."""

    iterations: int
    cycles: float
    #: Mean per-iteration critical-path latency (no cross-iteration overlap).
    iteration_latency: float
    #: Effective initiation interval under the selected execution mode.
    initiation_interval: float
    latency: LatencyCounters
    activity: ActivityCounters
    final_state: MachineState
    #: Which drive loop executed: "interpreted", "compiled", "batched", or
    #: "batched+compiled" when a mid-run bail finished on the scalar loop.
    drive_path: str = "interpreted"
    #: Why the batched path was not (fully) used, when it wasn't.
    drive_reason: str = ""

    @property
    def cycles_per_iteration(self) -> float:
        return self.cycles / self.iterations if self.iterations else 0.0


class DataflowEngine:
    """Executes a configured program on the modeled fabric."""

    def __init__(self, program: AcceleratorProgram,
                 hierarchy: MemoryHierarchy | None = None,
                 interconnect: Interconnect | None = None,
                 compiled: bool = True) -> None:
        program.validate_placement()
        self.program = program
        self.config: AcceleratorConfig = program.config
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy()
        self.interconnect = (interconnect if interconnect is not None
                             else build_interconnect(self.config))
        #: The compiled form of the program (shared across engines over the
        #: same program and interconnect value).
        self.plan = compile_plan(program, self.interconnect)
        self._compiled = compiled
        #: Per-row NoC ring channels (created on first use).
        self._noc_channels: dict[int, MemoryPorts] = {}

    # -- public API ------------------------------------------------------------

    def run(self, state: MachineState,
            options: ExecutionOptions | None = None) -> AcceleratorRun:
        """Execute the loop region starting from an architectural state.

        The ``state``'s memory is mutated in place (stores commit); register
        live-outs are written back on completion, as in the paper's
        control-return protocol (§5.1).
        """
        options = options if options is not None else ExecutionOptions()
        ports = (options.ports if options.ports is not None
                 else MemoryPorts(self.config.memory_ports))
        # Each run starts a fresh timeline: clear NoC ring-channel state.
        self._noc_channels.clear()
        latency = LatencyCounters()
        activity = ActivityCounters()
        reg_env = {reg: state.read(reg) for reg in self.program.live_in}

        drive_path = "compiled" if self._compiled else "interpreted"
        drive_reason = ""
        if not self._compiled:
            iterations, iteration_latencies = self._drive_interpreted(
                state, reg_env, ports, latency, activity, options)
        else:
            batch_program = None
            if options.batch is not False:
                batch_program = self.plan.batch_program
                if not batch_program.capability:
                    drive_reason = batch_program.capability.reason
                    batch_program = None
            if batch_program is None:
                iterations, iteration_latencies = self._drive_compiled(
                    state, reg_env, ports, latency, activity, options)
            else:
                iterations, iteration_latencies, bail = drive_batched(
                    batch_program, self.hierarchy, state, reg_env, ports,
                    latency, activity, options)
                drive_path = "batched"
                if bail is not None:
                    # A block violated a batching precondition (e.g. a
                    # store aliased a later load).  Nothing of that block
                    # was committed; the scalar loop continues the run from
                    # the last completed iteration — ports, caches, and
                    # counters carry over, so the result is still
                    # bit-identical to a pure scalar run.
                    clock, carried, drive_reason = bail
                    if carried is None:
                        drive_path = "compiled"
                        iterations, iteration_latencies = self._drive_compiled(
                            state, reg_env, ports, latency, activity, options)
                    else:
                        drive_path = "batched+compiled"
                        iterations, tail = self._drive_compiled(
                            state, reg_env, ports, latency, activity, options,
                            resume=(iterations, clock, carried))
                        iteration_latencies += tail

        mean_latency = (sum(iteration_latencies) / len(iteration_latencies)
                        if iteration_latencies else 0.0)
        total_cycles, ii = self._total_cycles(
            iterations, iteration_latencies, mean_latency, options, ports)
        return AcceleratorRun(
            iterations=iterations,
            cycles=total_cycles,
            iteration_latency=mean_latency,
            initiation_interval=ii,
            latency=latency,
            activity=activity,
            final_state=state,
            drive_path=drive_path,
            drive_reason=drive_reason,
        )

    # -- plan-compiled execution -------------------------------------------------

    def _drive_compiled(self, state, reg_env, ports,
                        latency: LatencyCounters, activity: ActivityCounters,
                        options: ExecutionOptions, resume=None):
        """Run the loop via the precompiled plan (flat lists per node id).

        ``resume`` — ``(iterations, clock, values)`` from a batched-path
        bail — continues a run mid-flight: the handed-over values act as
        the loop-carried inputs of the next iteration, and only the
        iterations this loop itself executes are folded into the counters.
        """
        plan = self.plan
        nodes = plan.nodes
        n = plan.n_nodes
        has_memory = plan.has_memory
        loop_branch = plan.loop_branch_id
        max_iterations = options.max_iterations
        const1, const2, const_fb = plan.bind_constants(reg_env)
        noc_channels = self._noc_channels

        # Accumulated in flat structures, folded into the counters at the
        # end.  Edge events index per-slot arrays (one slot per operand
        # occurrence, ``EdgePlan.slot``); per-slot totals are summed in the
        # same event order the interpreter uses, so float sums stay
        # identical once folded back into the per-key counters.
        node_total = [0.0] * n
        slot_cycles = [0.0] * len(plan.edge_slots)
        slot_count = [0] * len(plan.edge_slots)
        int_ops = fp_ops = forwards = control_events = 0
        local_hops = pe_busy = 0

        def transfer(e, depart):
            """Static edge latency plus (for NoC routes) ring-channel wait."""
            nonlocal local_hops
            if e.is_local:
                cycles = e.cycles
                local_hops += e.manhattan
            else:
                channel = noc_channels.get(e.src_row)
                if channel is None:
                    channel = MemoryPorts(num_ports=1)
                    noc_channels[e.src_row] = channel
                grant = channel.request(depart)
                wait = grant - depart
                cycles = e.cycles + wait
                activity.noc_hops += e.router_hops
                activity.noc_wait_cycles += wait
            slot = e.slot
            slot_cycles[slot] += cycles
            slot_count[slot] += 1
            return cycles

        # Inert guards (at or after their node) are already resolved away
        # in the plan, which lets the branch-state buffer be reused across
        # iterations (every effective guard's entry is rewritten before it
        # is read).
        guard_ids = [node.effective_guard for node in nodes]

        # Per-iteration buffers, allocated once and reused: values swap
        # with prev_values at the top of each iteration; completion and
        # branch_state entries are rewritten before any read.
        prev_values: list = [0] * n
        values: list = [0] * n
        completion: list = [0.0] * n
        branch_state: list = [False] * n
        vector_grants: dict[int, float] = {}
        stores_seen: list[tuple[int, int, int, float]] = []
        iteration_latencies: list[float] = []
        clock = 0.0
        iterations = 0
        base_iterations = 0
        if resume is not None:
            iterations, clock, carried = resume
            base_iterations = iterations
            values[:] = carried
        while True:
            start = clock
            first = iterations == 0
            prev_values, values = values, prev_values
            loop_taken = False
            lsq = LoadStoreQueue(capacity=n or 1) if has_memory else None
            vector_grants.clear()
            stores_seen.clear()

            for node in nodes:
                i = node.node_id
                op = node.src1
                kind = op.kind
                if kind == K_NODE:
                    src = op.src_id
                    depart = completion[src]
                    a = values[src]
                    a_arr = depart + transfer(op.edge, depart)
                elif kind == K_LOOP and not first:
                    a = prev_values[op.src_id]
                    a_arr = start + transfer(op.edge, start)
                else:
                    a = const1[i]
                    a_arr = start
                op = node.src2
                kind = op.kind
                if kind == K_NODE:
                    src = op.src_id
                    depart = completion[src]
                    b = values[src]
                    b_arr = depart + transfer(op.edge, depart)
                elif kind == K_LOOP and not first:
                    b = prev_values[op.src_id]
                    b_arr = start + transfer(op.edge, start)
                else:
                    b = const2[i]
                    b_arr = start
                ready = max(start, a_arr, b_arr)

                guard = guard_ids[i]
                if guard >= 0 and branch_state[guard]:
                    # Predicated off: forward the old destination value (§5).
                    op = node.fallback
                    kind = op.kind
                    if kind == K_NODE:
                        src = op.src_id
                        depart = completion[src]
                        value = values[src]
                        fb_arr = depart + transfer(op.edge, depart)
                    elif kind == K_LOOP and not first:
                        value = prev_values[op.src_id]
                        fb_arr = start + transfer(op.edge, start)
                    else:
                        value = const_fb[i]
                        fb_arr = start
                    done = ready if ready > fb_arr else fb_arr
                    forwards += 1
                    control_events += 1
                    if node.is_store:
                        value = 0  # suppressed store produces nothing
                    elif node.kind == N_CONTROL:
                        branch_state[i] = False  # a disabled branch is untaken
                elif node.kind == N_MEMORY:
                    value, done = self._run_memory_fast(
                        node, int(a), b, ready, state, lsq, ports, activity,
                        iterations, vector_grants, completion, stores_seen,
                        options)
                elif node.kind == N_CONTROL:
                    taken = node.evaluate(a, b)
                    branch_state[i] = taken
                    if node.is_loop_branch:
                        loop_taken = taken
                    value = int(taken)
                    done = ready + node.latency
                    control_events += 1
                else:
                    value = node.evaluate(a, b)
                    done = ready + node.latency
                    if node.is_fp:
                        fp_ops += 1
                    else:
                        int_ops += 1
                    pe_busy += node.latency

                values[i] = value
                completion[i] = done
                node_total[i] += done - start

            iteration_end = max(completion) if n else clock
            iteration_latencies.append(iteration_end - clock)
            clock = iteration_end  # barrier between iterations
            iterations += 1
            if loop_branch is None or not loop_taken:
                break
            if iterations >= max_iterations:
                break

        # Write live-out registers back to the architectural state (the
        # last iteration's results are still in ``values`` — the swap only
        # happens at the top of the next iteration).
        for register, node_id in self.program.live_out.items():
            if 0 <= node_id < n:
                state.write(register, values[node_id])

        edge_total: dict[tuple[int, int], float] = {}
        edge_count: dict[tuple[int, int], int] = {}
        for e in plan.edge_slots:
            count = slot_count[e.slot]
            if count:
                key = e.key
                edge_total[key] = edge_total.get(key, 0.0) + slot_cycles[e.slot]
                edge_count[key] = edge_count.get(key, 0) + count
        latency.bulk_record(node_total, iterations - base_iterations,
                            edge_total, edge_count)
        activity.int_ops += int_ops
        activity.fp_ops += fp_ops
        activity.forwards += forwards
        activity.control_events += control_events
        activity.local_hops += local_hops
        activity.pe_busy_cycles += pe_busy
        return iterations, iteration_latencies

    def _run_memory_fast(self, node, base: int, data, ready, state, lsq,
                         ports: MemoryPorts, activity: ActivityCounters,
                         iteration: int, vector_grants: dict[int, float],
                         completion: list[float],
                         stores_seen: list[tuple[int, int, int, float]],
                         options: ExecutionOptions):
        """Plan-driven load/store entry: disambiguation, forwarding, ports."""
        m = node.memory
        node_id = node.node_id
        address = (base + m.imm) & self.plan.xlen_mask
        if m.is_load:
            lsq.push(node_id, AccessKind.LOAD, pc=m.pc, size=m.size)
            outcome, store = lsq.resolve_load(node_id, address)
            activity.loads += 1
            if outcome is LoadOutcome.FORWARDED:
                value = m.from_raw(state.memory.load(address, m.size))
                store_done = completion[store.seq]
                fwd_done = (max(ready, store_done) + self.plan.store_issue)
                if options.speculative_loads and ready < store_done:
                    # The load issued before the store resolved, already
                    # read stale data, and is *invalidated* when the store
                    # broadcasts — "this invalidation forces the new value
                    # to propagate through the remainder of the DFG" (§4.2).
                    activity.load_replays += 1
                    return value, max(fwd_done,
                                      store_done + options.replay_penalty)
                # The forwarding path delivers the data directly.
                activity.lsq_forwards += 1
                return value, fwd_done
            if not options.speculative_loads:
                # Conservative ordering: wait for every older store's
                # address to resolve before issuing.
                for _, _, _, store_done in stores_seen:
                    ready = max(ready, store_done)
            # Vectorized loads piggyback on their group's port grant.
            group = m.vector_group
            if group is not None and group in vector_grants:
                grant = max(ready, vector_grants[group])
            else:
                grant = ports.request(ready)
                if group is not None:
                    vector_grants[group] = grant
            cycles = self.hierarchy.access(address, pc=m.pc)
            if m.prefetched and iteration > 0:
                # Issued an iteration early: only the L1 latency is exposed.
                cycles = min(cycles, self.hierarchy.ideal_latency)
            value = m.from_raw(state.memory.load(address, m.size))
            done = grant + cycles
            if options.speculative_loads:
                # §4.2 invalidation: an older store whose address resolved
                # *after* this load issued and overlaps it forces the new
                # value to re-propagate through the DFG.
                for _, s_addr, s_size, s_done in stores_seen:
                    overlaps = (s_addr < address + m.size
                                and address < s_addr + s_size)
                    if overlaps and s_done > grant:
                        activity.load_replays += 1
                        done = max(done, s_done + options.replay_penalty)
                        break
            return value, done
        # Store: commit the value to memory; timing is port grant + hand-off.
        lsq.push(node_id, AccessKind.STORE, pc=m.pc, size=m.size)
        lsq.resolve_store(node_id, address)
        activity.stores += 1
        grant = ports.request(ready)
        self.hierarchy.access(address, is_write=True, pc=m.pc)
        state.memory.store(address, m.size, m.to_raw(data))
        done = grant + self.plan.store_issue
        stores_seen.append((node_id, address, m.size, done))
        return 0, done

    # -- interpreter execution ---------------------------------------------------

    def _drive_interpreted(self, state, reg_env, ports,
                           latency: LatencyCounters,
                           activity: ActivityCounters,
                           options: ExecutionOptions):
        """Run the loop node-by-node (the executable specification)."""
        prev_values: dict[int, int | float] = {}
        iteration_latencies: list[float] = []
        clock = 0.0
        iterations = 0
        exited = False
        while not exited and iterations < options.max_iterations:
            values, completion, loop_taken = self._run_iteration(
                state, reg_env, prev_values, iterations, clock,
                ports, latency, activity, options,
            )
            iteration_end = max(completion.values(), default=clock)
            iteration_latencies.append(iteration_end - clock)
            clock = iteration_end  # barrier between iterations
            prev_values = values
            iterations += 1
            if self.program.loop_branch_id is None or not loop_taken:
                exited = True

        # Write live-out registers back to the architectural state.
        for register, node_id in self.program.live_out.items():
            if node_id in prev_values:
                state.write(register, prev_values[node_id])
        return iterations, iteration_latencies

    # -- one iteration -----------------------------------------------------------

    def _run_iteration(self, state, reg_env, prev_values, iteration, start,
                       ports, latency, activity, options: ExecutionOptions):
        """Execute all nodes of one iteration; returns (values, completion,
        loop-branch outcome)."""
        values: dict[int, int | float] = {}
        completion: dict[int, float] = {}
        branch_outcomes: dict[int, bool] = {}
        lsq = LoadStoreQueue(capacity=max(len(self.program), 1))
        vector_grants: dict[int, float] = {}
        #: Stores seen so far this iteration: (node id, addr, size, done).
        stores_seen: list[tuple[int, int, int, float]] = []
        loop_taken = False

        for node in self.program.nodes:
            a, a_arr = self._resolve(node, node.src1, values, completion,
                                     reg_env, prev_values, iteration, start,
                                     latency, activity)
            b, b_arr = self._resolve(node, node.src2, values, completion,
                                     reg_env, prev_values, iteration, start,
                                     latency, activity)
            ready = max(start, a_arr, b_arr)
            instr = node.instruction

            disabled = (node.guard is not None
                        and branch_outcomes.get(node.guard.branch_node_id, False))
            if disabled:
                # Predicated off: forward the old destination value (§5).
                fb_value, fb_arr = self._resolve(
                    node, node.guard.fallback, values, completion, reg_env,
                    prev_values, iteration, start, latency, activity)
                value: int | float = fb_value
                done = max(ready, fb_arr)
                activity.forwards += 1
                activity.control_events += 1
                if instr.is_store:
                    value = 0  # suppressed store produces nothing
            elif node.is_memory:
                value, done = self._run_memory(node, int(a), b, ready, start,
                                               state, lsq, ports, activity,
                                               iteration, vector_grants,
                                               completion, stores_seen,
                                               options)
            elif instr.is_branch or instr.is_jump:
                taken = branch_taken(instr, a, b) if instr.is_branch else True
                branch_outcomes[node.node_id] = taken
                if node.node_id == self.program.loop_branch_id:
                    loop_taken = taken
                value = int(taken)
                done = ready + self.config.latencies.for_instruction(instr)
                activity.control_events += 1
            else:
                value = apply_operation(instr, a, b, xlen=self.config.xlen)
                done = ready + self.config.latencies.for_instruction(instr)
                if instr.is_fp:
                    activity.fp_ops += 1
                else:
                    activity.int_ops += 1
                activity.pe_busy_cycles += self.config.latencies.for_instruction(instr)

            values[node.node_id] = value
            completion[node.node_id] = done
            latency.record_node(node.node_id, done - start)

        return values, completion, loop_taken

    def _resolve(self, node: ConfiguredNode, operand: Operand, values,
                 completion, reg_env, prev_values, iteration, start,
                 latency: LatencyCounters, activity: ActivityCounters):
        """Value and arrival cycle of one operand at ``node``'s position."""
        if operand.kind is OperandKind.NONE:
            return 0, start
        if operand.kind is OperandKind.REGISTER:
            # Loop-invariant live-in: latched at the PE during configuration.
            return reg_env.get(operand.register, 0), start
        if operand.kind is OperandKind.LOOP_CARRIED:
            if iteration == 0:
                return reg_env.get(operand.register, 0), start
            transfer = self._transfer(operand.node_id, node, start,
                                      latency, activity)
            # Barrier execution: the producer finished before this iteration
            # started, so only the transfer beyond the barrier is exposed.
            return prev_values[operand.node_id], start + transfer
        # Same-iteration DFG edge.
        depart = completion[operand.node_id]
        transfer = self._transfer(operand.node_id, node, depart,
                                  latency, activity)
        return values[operand.node_id], depart + transfer

    def _transfer(self, src_id: int, dst: ConfiguredNode, depart: float,
                  latency: LatencyCounters, activity: ActivityCounters) -> float:
        """Transfer latency from the producer to ``dst``, departing at
        ``depart`` — NoC-routed packets additionally arbitrate for their
        source row's ring channel ("sending via the on-chip network takes
        longer depending on traffic and distance", §5.2)."""
        src = self.program.node(src_id)
        cycles = float(self.interconnect.latency(src.coord, dst.coord))
        manhattan = abs(src.coord[0] - dst.coord[0]) + abs(src.coord[1] - dst.coord[1])
        if manhattan * self.config.local_hop_latency <= cycles:
            activity.local_hops += manhattan  # took the neighbor links
        else:
            # Routed over the NoC: one packet per cycle per row ring.
            channel = self._noc_channel(src.coord[0])
            grant = channel.request(depart)
            wait = grant - depart
            cycles += wait
            # Hops measure router activity (energy per traversal); queue
            # time is tracked separately as noc_wait_cycles.
            activity.noc_hops += self.interconnect.router_hops(
                src.coord, dst.coord)
            activity.noc_wait_cycles += wait
        latency.record_edge(src_id, dst.node_id, cycles)
        return cycles

    def _noc_channel(self, row: int) -> MemoryPorts:
        channel = self._noc_channels.get(row)
        if channel is None:
            channel = MemoryPorts(num_ports=1)
            self._noc_channels[row] = channel
        return channel

    def _run_memory(self, node: ConfiguredNode, base: int, data, ready, start,
                    state: MachineState, lsq: LoadStoreQueue,
                    ports: MemoryPorts, activity: ActivityCounters,
                    iteration: int, vector_grants: dict[int, float],
                    completion: dict[int, float],
                    stores_seen: list[tuple[int, int, int, float]],
                    options: ExecutionOptions):
        """Execute a load/store entry: disambiguation, forwarding, ports."""
        instr = node.instruction
        address = (base + instr.imm) & ((1 << self.config.xlen) - 1)
        if instr.is_load:
            size, signed = _LOAD_FORMATS[instr.opcode]
            lsq.push(node.node_id, AccessKind.LOAD, pc=instr.address, size=size)
            outcome, store = lsq.resolve_load(node.node_id, address)
            activity.loads += 1
            if outcome is LoadOutcome.FORWARDED:
                value = self._load_value(state, instr, address, size, signed)
                store_done = completion.get(store.seq, ready)
                fwd_done = (max(ready, store_done)
                            + self.config.latencies.store_issue)
                if options.speculative_loads and ready < store_done:
                    # The load issued before the store resolved, already
                    # read stale data, and is *invalidated* when the store
                    # broadcasts — "this invalidation forces the new value
                    # to propagate through the remainder of the DFG" (§4.2).
                    activity.load_replays += 1
                    return value, max(fwd_done,
                                      store_done + options.replay_penalty)
                # The forwarding path delivers the data directly.
                activity.lsq_forwards += 1
                return value, fwd_done
            if not options.speculative_loads:
                # Conservative ordering: wait for every older store's
                # address to resolve before issuing.
                for _, _, _, store_done in stores_seen:
                    ready = max(ready, store_done)
            # Vectorized loads piggyback on their group's port grant.
            if (node.vector_group is not None
                    and node.vector_group in vector_grants):
                grant = max(ready, vector_grants[node.vector_group])
            else:
                grant = ports.request(ready)
                if node.vector_group is not None:
                    vector_grants[node.vector_group] = grant
            cycles = self.hierarchy.access(address, pc=instr.address)
            if node.prefetched and iteration > 0:
                # Issued an iteration early: only the L1 latency is exposed.
                cycles = min(cycles, self.hierarchy.ideal_latency)
            value = self._load_value(state, instr, address, size, signed)
            done = grant + cycles
            if options.speculative_loads:
                # §4.2 invalidation: an older store whose address resolved
                # *after* this load issued and overlaps it forces the new
                # value to re-propagate through the DFG.
                for _, s_addr, s_size, s_done in stores_seen:
                    overlaps = (s_addr < address + size
                                and address < s_addr + s_size)
                    if overlaps and s_done > grant:
                        activity.load_replays += 1
                        done = max(done, s_done + options.replay_penalty)
                        break
            return value, done
        # Store: commit the value to memory; timing is port grant + hand-off.
        size = _STORE_SIZES[instr.opcode]
        lsq.push(node.node_id, AccessKind.STORE, pc=instr.address, size=size)
        lsq.resolve_store(node.node_id, address)
        activity.stores += 1
        grant = ports.request(ready)
        self.hierarchy.access(address, is_write=True, pc=instr.address)
        self._store_value(state, instr, address, size, data)
        done = grant + self.config.latencies.store_issue
        stores_seen.append((node.node_id, address, size, done))
        return 0, done

    @staticmethod
    def _load_value(state: MachineState, instr: Instruction, address: int,
                    size: int, signed: bool):
        raw = state.memory.load(address, size)
        if instr.opcode is Opcode.FLW:
            return struct.unpack("<f", raw.to_bytes(4, "little"))[0]
        if signed:
            sign = 1 << (size * 8 - 1)
            return (raw & (sign - 1)) - (raw & sign)
        return raw
    @staticmethod
    def _store_value(state: MachineState, instr: Instruction, address: int,
                     size: int, data) -> None:
        if instr.opcode is Opcode.FSW:
            raw = int.from_bytes(struct.pack("<f", float(data)), "little")
        else:
            raw = int(data) & ((1 << (size * 8)) - 1)
        state.memory.store(address, size, raw)

    # -- mode timing ---------------------------------------------------------------

    def _total_cycles(self, iterations, iteration_latencies, mean_latency,
                      options: ExecutionOptions, ports: MemoryPorts):
        """Total region cycles under the selected execution mode."""
        if iterations == 0:
            return 0.0, 0.0
        barrier_total = float(sum(iteration_latencies))
        # Port requests per iteration: every store and ungrouped load is one
        # request; a vector group of loads shares a single grant.
        memory_per_iter = self.plan.memory_per_iter
        port_count = math.inf if ports.unlimited else ports.num_ports
        issue = ports.issue_interval

        if not options.pipelined and options.tile_factor == 1:
            return barrier_total, mean_latency

        recurrence = self._recurrence_ii()
        tile = options.tile_factor
        rounds = math.ceil(iterations / tile)
        if port_count is math.inf or port_count == float("inf"):
            bandwidth_ii = 0.0
            occupancy_ii = 0.0
        else:
            bandwidth_ii = tile * memory_per_iter * issue / port_count
            # Load/store entries hold a request for its *exposed* latency,
            # so outstanding-miss parallelism is bounded by the entry pool
            # (the MLP limit that makes miss-heavy kernels latency-bound
            # even with ample ports).  Prefetched loads were issued an
            # iteration early and only expose the L1 latency; a vector
            # group shares one transaction; stores drain from a buffer.
            occupancy = 0.0
            seen_groups: set[int] = set()
            for is_store, group, prefetched, pc in self.plan.occupancy_entries:
                if is_store:
                    occupancy += self.config.latencies.store_issue
                    continue
                if group is not None:
                    if group in seen_groups:
                        continue
                    seen_groups.add(group)
                if prefetched:
                    occupancy += self.hierarchy.ideal_latency
                else:
                    occupancy += (self.hierarchy.amat(pc)
                                  or self.hierarchy.ideal_latency)
            occupancy_ii = tile * occupancy / self.config.lsu_entries

        if options.pipelined:
            ii = max(recurrence, bandwidth_ii, occupancy_ii, 1.0)
            total = mean_latency + max(0, rounds - 1) * ii
        else:
            round_latency = max(mean_latency, bandwidth_ii, occupancy_ii)
            ii = round_latency
            total = rounds * round_latency
        return total, ii

    def _recurrence_ii(self) -> float:
        """Loop-carried recurrence bound on the initiation interval (RecMII),
        computed once per plan and memory model."""
        return self.plan.recurrence_ii(self.hierarchy.ideal_latency)
