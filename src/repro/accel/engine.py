"""Event-driven dataflow execution engine for the spatial accelerator.

The engine runs an :class:`~repro.accel.program.AcceleratorProgram` both
*functionally* (producing the same architectural state as the CPU would) and
*temporally* (cycle-approximate latency per the paper's Eq. 1/2 with memory
port contention).  Per-node and per-edge latency counters — the hardware
counters of paper §5.2 — are collected during execution and fed back to
MESA's iterative optimizer.

Execution modes mirror the paper's loop-level optimizations (§4.3):

* **barrier** (default): iterations execute back-to-back; iteration *i+1*
  starts when every node of iteration *i* has completed;
* **pipelined**: iterations are initiated every *II* cycles, where *II* is
  bounded below by loop-carried recurrences and memory-port bandwidth;
* **tiled**: ``tile_factor`` copies of the dataflow graph execute
  concurrently on disjoint iterations (Fig. 6), sharing the memory ports.

Functional results are mode-independent (the paper only tiles loops that are
explicitly parallel), so the engine always executes iterations sequentially
for correctness and applies the mode's timing model for cycle counts.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from ..isa import (
    Instruction,
    MachineState,
    Opcode,
    apply_operation,
    branch_taken,
)
from ..mem import (
    AccessKind,
    LoadOutcome,
    LoadStoreQueue,
    MemoryHierarchy,
    MemoryPorts,
)
from .config import AcceleratorConfig
from .counters import ActivityCounters, LatencyCounters
from .interconnect import Interconnect, build_interconnect
from .program import AcceleratorProgram, ConfiguredNode, Operand, OperandKind

__all__ = ["ExecutionOptions", "AcceleratorRun", "DataflowEngine"]

_LOAD_FORMATS = {
    Opcode.LB: (1, True), Opcode.LBU: (1, False),
    Opcode.LH: (2, True), Opcode.LHU: (2, False),
    Opcode.LW: (4, True), Opcode.FLW: (4, False),
    Opcode.LWU: (4, False), Opcode.LD: (8, True),
}
_STORE_SIZES = {Opcode.SB: 1, Opcode.SH: 2, Opcode.SW: 4, Opcode.FSW: 4,
                Opcode.SD: 8}


@dataclass(frozen=True)
class ExecutionOptions:
    """How the configured loop is driven."""

    pipelined: bool = False
    tile_factor: int = 1
    max_iterations: int = 1_000_000
    #: Ports model; None uses the config's port count.  Use
    #: :meth:`repro.mem.MemoryPorts.ideal` for the Fig. 15 ideal-memory case.
    ports: MemoryPorts | None = None
    #: Loads issue as soon as their address is ready, even past older
    #: stores with unresolved addresses (§4.2: "individual loads can be
    #: performed out-of-order as soon as their addresses are generated").
    #: A later-matching store invalidates the load and the new value must
    #: re-propagate — modeled as a replay penalty on the load's completion.
    speculative_loads: bool = True
    #: Cycles to re-propagate a value after a load invalidation.
    replay_penalty: int = 6

    def __post_init__(self) -> None:
        if self.tile_factor < 1:
            raise ValueError("tile_factor must be >= 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.replay_penalty < 0:
            raise ValueError("replay_penalty must be >= 0")


@dataclass
class AcceleratorRun:
    """Result of executing a configured loop region on the fabric."""

    iterations: int
    cycles: float
    #: Mean per-iteration critical-path latency (no cross-iteration overlap).
    iteration_latency: float
    #: Effective initiation interval under the selected execution mode.
    initiation_interval: float
    latency: LatencyCounters
    activity: ActivityCounters
    final_state: MachineState

    @property
    def cycles_per_iteration(self) -> float:
        return self.cycles / self.iterations if self.iterations else 0.0


class DataflowEngine:
    """Executes a configured program on the modeled fabric."""

    def __init__(self, program: AcceleratorProgram,
                 hierarchy: MemoryHierarchy | None = None,
                 interconnect: Interconnect | None = None) -> None:
        program.validate_placement()
        self.program = program
        self.config: AcceleratorConfig = program.config
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy()
        self.interconnect = (interconnect if interconnect is not None
                             else build_interconnect(self.config))
        #: Per-row NoC ring channels (created on first use).
        self._noc_channels: dict[int, MemoryPorts] = {}

    # -- public API ------------------------------------------------------------

    def run(self, state: MachineState,
            options: ExecutionOptions | None = None) -> AcceleratorRun:
        """Execute the loop region starting from an architectural state.

        The ``state``'s memory is mutated in place (stores commit); register
        live-outs are written back on completion, as in the paper's
        control-return protocol (§5.1).
        """
        options = options if options is not None else ExecutionOptions()
        ports = (options.ports if options.ports is not None
                 else MemoryPorts(self.config.memory_ports))
        # Each run starts a fresh timeline: clear NoC ring-channel state.
        self._noc_channels.clear()
        latency = LatencyCounters()
        activity = ActivityCounters()

        reg_env = {reg: state.read(reg) for reg in self.program.live_in}
        prev_values: dict[int, int | float] = {}
        iteration_latencies: list[float] = []
        clock = 0.0
        iterations = 0
        exited = False

        while not exited and iterations < options.max_iterations:
            values, completion, loop_taken = self._run_iteration(
                state, reg_env, prev_values, iterations, clock,
                ports, latency, activity, options,
            )
            iteration_end = max(completion.values(), default=clock)
            iteration_latencies.append(iteration_end - clock)
            clock = iteration_end  # barrier between iterations
            prev_values = values
            iterations += 1
            if self.program.loop_branch_id is None or not loop_taken:
                exited = True

        # Write live-out registers back to the architectural state.
        for register, node_id in self.program.live_out.items():
            if node_id in prev_values:
                state.write(register, prev_values[node_id])

        mean_latency = (sum(iteration_latencies) / len(iteration_latencies)
                        if iteration_latencies else 0.0)
        total_cycles, ii = self._total_cycles(
            iterations, iteration_latencies, mean_latency, options, ports)
        return AcceleratorRun(
            iterations=iterations,
            cycles=total_cycles,
            iteration_latency=mean_latency,
            initiation_interval=ii,
            latency=latency,
            activity=activity,
            final_state=state,
        )

    # -- one iteration -----------------------------------------------------------

    def _run_iteration(self, state, reg_env, prev_values, iteration, start,
                       ports, latency, activity, options: ExecutionOptions):
        """Execute all nodes of one iteration; returns (values, completion,
        loop-branch outcome)."""
        values: dict[int, int | float] = {}
        completion: dict[int, float] = {}
        branch_outcomes: dict[int, bool] = {}
        lsq = LoadStoreQueue(capacity=max(len(self.program), 1))
        vector_grants: dict[int, float] = {}
        #: Stores seen so far this iteration: (node id, addr, size, done).
        stores_seen: list[tuple[int, int, int, float]] = []
        loop_taken = False

        for node in self.program.nodes:
            a, a_arr = self._resolve(node, node.src1, values, completion,
                                     reg_env, prev_values, iteration, start,
                                     latency, activity)
            b, b_arr = self._resolve(node, node.src2, values, completion,
                                     reg_env, prev_values, iteration, start,
                                     latency, activity)
            ready = max(start, a_arr, b_arr)
            instr = node.instruction

            disabled = (node.guard is not None
                        and branch_outcomes.get(node.guard.branch_node_id, False))
            if disabled:
                # Predicated off: forward the old destination value (§5).
                fb_value, fb_arr = self._resolve(
                    node, node.guard.fallback, values, completion, reg_env,
                    prev_values, iteration, start, latency, activity)
                value: int | float = fb_value
                done = max(ready, fb_arr)
                activity.forwards += 1
                activity.control_events += 1
                if instr.is_store:
                    value = 0  # suppressed store produces nothing
            elif node.is_memory:
                value, done = self._run_memory(node, int(a), b, ready, start,
                                               state, lsq, ports, activity,
                                               iteration, vector_grants,
                                               completion, stores_seen,
                                               options)
            elif instr.is_branch or instr.is_jump:
                taken = branch_taken(instr, a, b) if instr.is_branch else True
                branch_outcomes[node.node_id] = taken
                if node.node_id == self.program.loop_branch_id:
                    loop_taken = taken
                value = int(taken)
                done = ready + self.config.latencies.for_instruction(instr)
                activity.control_events += 1
            else:
                value = apply_operation(instr, a, b, xlen=self.config.xlen)
                done = ready + self.config.latencies.for_instruction(instr)
                if instr.is_fp:
                    activity.fp_ops += 1
                else:
                    activity.int_ops += 1
                activity.pe_busy_cycles += self.config.latencies.for_instruction(instr)

            values[node.node_id] = value
            completion[node.node_id] = done
            latency.record_node(node.node_id, done - start)

        return values, completion, loop_taken

    def _resolve(self, node: ConfiguredNode, operand: Operand, values,
                 completion, reg_env, prev_values, iteration, start,
                 latency: LatencyCounters, activity: ActivityCounters):
        """Value and arrival cycle of one operand at ``node``'s position."""
        if operand.kind is OperandKind.NONE:
            return 0, start
        if operand.kind is OperandKind.REGISTER:
            # Loop-invariant live-in: latched at the PE during configuration.
            return reg_env.get(operand.register, 0), start
        if operand.kind is OperandKind.LOOP_CARRIED:
            if iteration == 0:
                return reg_env.get(operand.register, 0), start
            transfer = self._transfer(operand.node_id, node, start,
                                      latency, activity)
            # Barrier execution: the producer finished before this iteration
            # started, so only the transfer beyond the barrier is exposed.
            return prev_values[operand.node_id], start + transfer
        # Same-iteration DFG edge.
        depart = completion[operand.node_id]
        transfer = self._transfer(operand.node_id, node, depart,
                                  latency, activity)
        return values[operand.node_id], depart + transfer

    def _transfer(self, src_id: int, dst: ConfiguredNode, depart: float,
                  latency: LatencyCounters, activity: ActivityCounters) -> float:
        """Transfer latency from the producer to ``dst``, departing at
        ``depart`` — NoC-routed packets additionally arbitrate for their
        source row's ring channel ("sending via the on-chip network takes
        longer depending on traffic and distance", §5.2)."""
        src = self.program.node(src_id)
        cycles = float(self.interconnect.latency(src.coord, dst.coord))
        manhattan = abs(src.coord[0] - dst.coord[0]) + abs(src.coord[1] - dst.coord[1])
        if manhattan * self.config.local_hop_latency <= cycles:
            activity.local_hops += manhattan  # took the neighbor links
        else:
            # Routed over the NoC: one packet per cycle per row ring.
            channel = self._noc_channel(src.coord[0])
            grant = channel.request(depart)
            wait = grant - depart
            cycles += wait
            activity.noc_hops += int(cycles)
            activity.noc_wait_cycles += wait
        latency.record_edge(src_id, dst.node_id, cycles)
        return cycles

    def _noc_channel(self, row: int) -> MemoryPorts:
        channel = self._noc_channels.get(row)
        if channel is None:
            channel = MemoryPorts(num_ports=1)
            self._noc_channels[row] = channel
        return channel

    def _run_memory(self, node: ConfiguredNode, base: int, data, ready, start,
                    state: MachineState, lsq: LoadStoreQueue,
                    ports: MemoryPorts, activity: ActivityCounters,
                    iteration: int, vector_grants: dict[int, float],
                    completion: dict[int, float],
                    stores_seen: list[tuple[int, int, int, float]],
                    options: ExecutionOptions):
        """Execute a load/store entry: disambiguation, forwarding, ports."""
        instr = node.instruction
        address = (base + instr.imm) & ((1 << self.config.xlen) - 1)
        if instr.is_load:
            size, signed = _LOAD_FORMATS[instr.opcode]
            lsq.push(node.node_id, AccessKind.LOAD, pc=instr.address, size=size)
            outcome, store = lsq.resolve_load(node.node_id, address)
            activity.loads += 1
            if outcome is LoadOutcome.FORWARDED:
                value = self._load_value(state, instr, address, size, signed)
                store_done = completion.get(store.seq, ready)
                fwd_done = (max(ready, store_done)
                            + self.config.latencies.store_issue)
                if options.speculative_loads and ready < store_done:
                    # The load issued before the store resolved, already
                    # read stale data, and is *invalidated* when the store
                    # broadcasts — "this invalidation forces the new value
                    # to propagate through the remainder of the DFG" (§4.2).
                    activity.load_replays += 1
                    return value, max(fwd_done,
                                      store_done + options.replay_penalty)
                # The forwarding path delivers the data directly.
                activity.lsq_forwards += 1
                return value, fwd_done
            if not options.speculative_loads:
                # Conservative ordering: wait for every older store's
                # address to resolve before issuing.
                for _, _, _, store_done in stores_seen:
                    ready = max(ready, store_done)
            # Vectorized loads piggyback on their group's port grant.
            if (node.vector_group is not None
                    and node.vector_group in vector_grants):
                grant = max(ready, vector_grants[node.vector_group])
            else:
                grant = ports.request(ready)
                if node.vector_group is not None:
                    vector_grants[node.vector_group] = grant
            cycles = self.hierarchy.access(address, pc=instr.address)
            if node.prefetched and iteration > 0:
                # Issued an iteration early: only the L1 latency is exposed.
                cycles = min(cycles, self.hierarchy.ideal_latency)
            value = self._load_value(state, instr, address, size, signed)
            done = grant + cycles
            if options.speculative_loads:
                # §4.2 invalidation: an older store whose address resolved
                # *after* this load issued and overlaps it forces the new
                # value to re-propagate through the DFG.
                for _, s_addr, s_size, s_done in stores_seen:
                    overlaps = (s_addr < address + size
                                and address < s_addr + s_size)
                    if overlaps and s_done > grant:
                        activity.load_replays += 1
                        done = max(done, s_done + options.replay_penalty)
                        break
            return value, done
        # Store: commit the value to memory; timing is port grant + hand-off.
        size = _STORE_SIZES[instr.opcode]
        lsq.push(node.node_id, AccessKind.STORE, pc=instr.address, size=size)
        lsq.resolve_store(node.node_id, address)
        activity.stores += 1
        grant = ports.request(ready)
        self.hierarchy.access(address, is_write=True, pc=instr.address)
        self._store_value(state, instr, address, size, data)
        done = grant + self.config.latencies.store_issue
        stores_seen.append((node.node_id, address, size, done))
        return 0, done

    @staticmethod
    def _load_value(state: MachineState, instr: Instruction, address: int,
                    size: int, signed: bool):
        raw = state.memory.load(address, size)
        if instr.opcode is Opcode.FLW:
            return struct.unpack("<f", raw.to_bytes(4, "little"))[0]
        if signed:
            sign = 1 << (size * 8 - 1)
            return (raw & (sign - 1)) - (raw & sign)
        return raw
    @staticmethod
    def _store_value(state: MachineState, instr: Instruction, address: int,
                     size: int, data) -> None:
        if instr.opcode is Opcode.FSW:
            raw = int.from_bytes(struct.pack("<f", float(data)), "little")
        else:
            raw = int(data) & ((1 << (size * 8)) - 1)
        state.memory.store(address, size, raw)

    # -- mode timing ---------------------------------------------------------------

    def _total_cycles(self, iterations, iteration_latencies, mean_latency,
                      options: ExecutionOptions, ports: MemoryPorts):
        """Total region cycles under the selected execution mode."""
        if iterations == 0:
            return 0.0, 0.0
        barrier_total = float(sum(iteration_latencies))
        # Port requests per iteration: every store and ungrouped load is one
        # request; a vector group of loads shares a single grant.
        groups = set()
        memory_per_iter = 0
        for node in self.program.memory_nodes:
            if node.instruction.is_load and node.vector_group is not None:
                groups.add(node.vector_group)
            else:
                memory_per_iter += 1
        memory_per_iter += len(groups)
        port_count = math.inf if ports.unlimited else ports.num_ports
        issue = ports.issue_interval

        if not options.pipelined and options.tile_factor == 1:
            return barrier_total, mean_latency

        recurrence = self._recurrence_ii()
        tile = options.tile_factor
        rounds = math.ceil(iterations / tile)
        if port_count is math.inf or port_count == float("inf"):
            bandwidth_ii = 0.0
            occupancy_ii = 0.0
        else:
            bandwidth_ii = tile * memory_per_iter * issue / port_count
            # Load/store entries hold a request for its *exposed* latency,
            # so outstanding-miss parallelism is bounded by the entry pool
            # (the MLP limit that makes miss-heavy kernels latency-bound
            # even with ample ports).  Prefetched loads were issued an
            # iteration early and only expose the L1 latency; a vector
            # group shares one transaction; stores drain from a buffer.
            occupancy = 0.0
            seen_groups: set[int] = set()
            for node in self.program.memory_nodes:
                instr = node.instruction
                if instr.is_store:
                    occupancy += self.config.latencies.store_issue
                    continue
                if node.vector_group is not None:
                    if node.vector_group in seen_groups:
                        continue
                    seen_groups.add(node.vector_group)
                if node.prefetched:
                    occupancy += self.hierarchy.ideal_latency
                else:
                    occupancy += (self.hierarchy.amat(instr.address)
                                  or self.hierarchy.ideal_latency)
            occupancy_ii = tile * occupancy / self.config.lsu_entries

        if options.pipelined:
            ii = max(recurrence, bandwidth_ii, occupancy_ii, 1.0)
            total = mean_latency + max(0, rounds - 1) * ii
        else:
            round_latency = max(mean_latency, bandwidth_ii, occupancy_ii)
            ii = round_latency
            total = rounds * round_latency
        return total, ii

    def _recurrence_ii(self) -> float:
        """Loop-carried recurrence bound on the initiation interval.

        For each loop-carried edge (u -> v, distance 1), the cycle through
        the intra-iteration longest path from v to u plus the transfer
        latency constrains II (standard modulo-scheduling RecMII with all
        dependence distances equal to 1).
        """
        lat = self.config.latencies
        # Longest intra-iteration completion offset from node v to node u,
        # following same-iteration DFG edges.
        def op_latency(node: ConfiguredNode) -> float:
            if node.is_memory:
                return float(self.hierarchy.ideal_latency)
            try:
                return float(lat.for_instruction(node.instruction))
            except KeyError:
                return 1.0

        best = 1.0
        for node in self.program.nodes:
            for operand in node.operands():
                if operand.kind is not OperandKind.LOOP_CARRIED:
                    continue
                producer = operand.node_id
                transfer = self.interconnect.latency(
                    self.program.node(producer).coord, node.coord)
                path = self._longest_path(node.node_id, producer, op_latency)
                if path is not None:
                    best = max(best, path + transfer)
        return best

    def _longest_path(self, src: int, dst: int, op_latency) -> float | None:
        """Longest same-iteration path latency from node src to node dst
        (inclusive of both ops), or None if unreachable."""
        if src > dst:
            return None
        # DP over program order: dist[n] = longest arrival at n's output.
        dist: dict[int, float] = {src: op_latency(self.program.node(src))}
        for node in self.program.nodes[src + 1:dst + 1]:
            best: float | None = None
            for operand in node.operands():
                if operand.kind is OperandKind.NODE and operand.node_id in dist:
                    transfer = self.interconnect.latency(
                        self.program.node(operand.node_id).coord, node.coord)
                    arrival = dist[operand.node_id] + transfer
                    best = arrival if best is None else max(best, arrival)
            if best is not None:
                dist[node.node_id] = best + op_latency(node)
        return dist.get(dst)
