"""The accelerator's load/store entries.

Paper Fig. 5: "Load/store entries locally interconnected to PEs but maintain
original program ordering.  Forwarding paths allow stores to broadcast data
and address when ready, forwarding data to future loads with matching
addresses."  Entries sit along the array's edge (modeled at column ``-1`` of
their row) and share a small number of memory ports ("the actual design has
far more entries sharing a port").

The entries re-use :class:`repro.mem.LoadStoreQueue` for disambiguation and
forwarding semantics and :class:`repro.mem.MemoryPorts` for bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem import MemoryPorts
from .config import AcceleratorConfig, Coord

__all__ = ["LsuAssignment", "LoadStoreEntries"]


@dataclass(frozen=True)
class LsuAssignment:
    """A memory instruction's slot among the load/store entries."""

    entry_index: int
    coord: Coord  # position used by the interconnect latency model


class LoadStoreEntries:
    """Allocation and placement of memory instructions into LSU entries.

    Entries are distributed round-robin across rows so that a memory-heavy
    loop spreads its accesses along the array edge; entry ``i`` lives at
    coordinate ``(row_of(i), -1)``.
    """

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self.ports = MemoryPorts(config.memory_ports)
        self._next = 0
        self._assignments: dict[int, LsuAssignment] = {}  # node id -> slot

    @property
    def capacity(self) -> int:
        return self.config.lsu_entries

    @property
    def allocated(self) -> int:
        return self._next

    @property
    def full(self) -> bool:
        return self._next >= self.capacity

    def entry_coord(self, entry_index: int) -> Coord:
        """Edge coordinate of one entry (row spread, column -1)."""
        rows = self.config.rows
        stride = max(1, rows * self.config.cols // max(1, self.capacity))
        row = (entry_index * stride) % rows
        return (row, -1)

    def allocate(self, node_id: int) -> LsuAssignment:
        """Assign the next entry, in program order, to a memory node.

        Raises:
            OverflowError: when all entries are taken (a structural hazard
                that disqualifies the loop, condition C1).
        """
        if self.full:
            raise OverflowError(
                f"all {self.capacity} load/store entries in use"
            )
        if node_id in self._assignments:
            raise ValueError(f"node {node_id} already has an LSU entry")
        assignment = LsuAssignment(self._next, self.entry_coord(self._next))
        self._assignments[node_id] = assignment
        self._next += 1
        return assignment

    def assignment(self, node_id: int) -> LsuAssignment:
        return self._assignments[node_id]

    def clear(self) -> None:
        """Release all entries (new code region)."""
        self._next = 0
        self._assignments.clear()
        self.ports.reset()
