"""Spatial accelerator substrate.

The paper's custom parameterizable backend (§5.2): a 2-D grid of PEs with
local neighbor links and a half-ring NoC, load/store entries sharing memory
ports, per-PE capability masks, a configuration bitstream, and an
event-driven dataflow execution engine with the performance counters MESA's
optimizer reads back.

Named configurations :data:`M_64`, :data:`M_128`, and :data:`M_512` match the
paper's three evaluation backends.
"""

from .bitstream import BitstreamError, decode_bitstream, encode_bitstream
from .config import (
    AcceleratorConfig,
    Coord,
    InterconnectKind,
    M_128,
    M_512,
    M_64,
    mesa_config,
)
from .counters import ActivityCounters, LatencyCounters
from .engine import AcceleratorRun, DataflowEngine, ExecutionOptions
from .grid import PEGrid
from .interconnect import (
    Interconnect,
    MeshInterconnect,
    MeshNocInterconnect,
    RowSliceInterconnect,
    build_interconnect,
)
from .lsu import LoadStoreEntries, LsuAssignment
from .plan import ExecutionPlan, compile_plan
from .program import (
    AcceleratorProgram,
    ConfiguredNode,
    Guard,
    Operand,
    OperandKind,
)

__all__ = [
    "BitstreamError",
    "decode_bitstream",
    "encode_bitstream",
    "AcceleratorConfig",
    "Coord",
    "InterconnectKind",
    "M_64",
    "M_128",
    "M_512",
    "mesa_config",
    "ActivityCounters",
    "LatencyCounters",
    "AcceleratorRun",
    "DataflowEngine",
    "ExecutionOptions",
    "PEGrid",
    "Interconnect",
    "MeshInterconnect",
    "MeshNocInterconnect",
    "RowSliceInterconnect",
    "build_interconnect",
    "LoadStoreEntries",
    "LsuAssignment",
    "ExecutionPlan",
    "compile_plan",
    "AcceleratorProgram",
    "ConfiguredNode",
    "Guard",
    "Operand",
    "OperandKind",
]
