"""Batched execution: advance a block of fabric iterations as numpy vectors.

The scalar compiled loop (:meth:`DataflowEngine._drive_compiled`) walks every
node of every iteration in Python.  For most kernels the dynamic behaviour
per iteration is tiny — values change, but routing, latencies, guards, and
the schedule are frozen in the :class:`~repro.accel.plan.ExecutionPlan` — so
a block of B iterations can be advanced at once with (B,)-shaped vectors per
node instead of B full Python sweeps.

The contract is the same as the plan's: **bit-identical** to the interpreter
on everything the batched path accepts.  That is only possible because of a
few provable properties of the model:

* **Float semantics.**  The scalar path computes every FP op as
  ``_f32(op(float(a), float(b)))`` — float64 arithmetic rounded to binary32.
  The batched path converts operands to float64 (exact for binary32 values
  and for integers in the RV32 range), applies the same float64 ufunc, and
  rounds with ``astype(float32)`` — the identical computation, including NaN
  payload propagation and overflow-to-inf.  Loop-carried FP reductions
  accumulate directly in float32, which equals the round-each-step scalar
  chain by the innocuous-double-rounding theorem (binary64's 53-bit
  significand exceeds 2·24+2 for add/sub; binary32 products are exact in
  binary64).
* **NoC ring queueing is closed-form.**  Channel state never carries
  between iterations: the next iteration starts no earlier than the last
  grant plus the edge latency (>= 1 cycle), which is exactly when the
  channel frees — so per-iteration request chains are independent and
  vectorize.  A row with one NoC slot provably never waits; a row with
  several fires them in the scalar loop's request order (node id, src1
  before src2), and the grant of slot ``j`` is ``max(depart_j,
  grant_{j-1} + 1)``.  Because the issue-interval bump distributes over
  the max-plus source decomposition, the whole chain is carried as
  per-source weight matrices (phase T) and reproduces the event-order
  departures bit-exactly.  Only a *fallback* slot on a contended row —
  whose firing depends on runtime guard values — has no static order and
  falls back to the scalar loop.
* **Guarded nodes mix, guarded memory masks.**  A predicated-off lane
  takes its fallback value (``np.where``) and the fallback transfer's
  timing; an off *memory* lane additionally skips the port request, the
  cache access, and the store commit — a mask-aware ``Memory.gather``
  reads only live lanes, and the block alias check ignores dead ones, so
  guard-false lanes charge neither port occupancy nor AMAT, exactly like
  the scalar loop's suppressed accesses.
* **Coupled recurrences run as an exact microloop.**  Loop-carried
  strongly connected components with no closed scan form (mutually
  recursive producers, guarded self-loops, non-linear updates) are
  *clusters*: their members are evaluated lane by lane with the plan's own
  scalar evaluator closures — bit-identical by construction — while every
  node outside the cluster, and all timing, stays vectorized.  Clusters
  through memory nodes still fall back (their lane values gate port state).
* **The LSQ is inert** when no store in a block byte-overlaps a
  same-or-later-iteration load.  A vectorized alias check proves that per
  block from the concrete addresses; a violating block *bails* untouched and
  the engine finishes the run on the scalar loop (state is continuous:
  nothing is mutated before the check passes).
* **Timing is max-plus linear.**  Completion times decompose over the
  sources {iteration start} ∪ {memory completions}: per node a static
  weight row per source is computed vectorially (phase T), only the memory
  grants/AMAT walk iterations sequentially (phase B), and per-node counter
  sums fold exactly because every timing quantity is an integer-valued
  float64 (any summation order is exact below 2**53).

Capability analysis (:func:`compile_batch`) decides statically whether a
plan qualifies; :attr:`ExecutionPlan.batchable` exposes the verdict with a
machine-readable reason so a fallback is visible in profiles instead of
just "it got slower".
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None

from ..isa import Opcode
from ..isa.registers import RegFile
from ..mem.lsq import block_alias_hazard
from .plan import (
    _LOAD_FORMATS,
    K_CONST,
    K_LOOP,
    K_NODE,
    N_CONTROL,
    N_MEMORY,
)

__all__ = ["BatchCapability", "BatchProgram", "compile_batch",
           "drive_batched", "DEFAULT_BLOCK", "BLOCK_ENV"]

#: Default iterations per batched block.
DEFAULT_BLOCK = 256
#: Environment override for the block size (``ExecutionOptions.batch_block``
#: wins when nonzero).
BLOCK_ENV = "REPRO_BATCH_BLOCK"
#: Hard ceiling keeping closed-form index arithmetic within int64.
MAX_BLOCK = 1 << 20

_M32 = 0xFFFFFFFF
_SIGN32 = 0x80000000
_NEG = float("-inf")

# Node result dtypes.
D_INT = 0   # int64 lanes holding signed-32 values
D_FP = 1    # float32 lanes

# Per-slot edge event cadences (for counter folding).
EV_ALWAYS = 0    # fires every iteration
EV_LOOP = 1      # every iteration except the global first (loop-carried)
EV_FB = 2        # fires when the owning node is predicated off
EV_FB_LOOP = 3   # EV_FB, minus a global-first-iteration off (const, no edge)


@dataclass(frozen=True)
class BatchCapability:
    """Verdict of the capability analysis for one plan."""

    supported: bool
    #: Machine-readable reason for a fallback ("" when supported).
    reason: str = ""

    def __bool__(self) -> bool:
        return self.supported


def _vts(a):
    """Vector ``_ts``: reinterpret the low 32 bits as signed (int64 lanes)."""
    return ((a & _M32) ^ _SIGN32) - _SIGN32


def _vtu(a):
    """Vector ``_tu``: low 32 bits as unsigned (int64 lanes)."""
    return a & _M32


def _f64(a):
    return a.astype(np.float64)


def _r32(a):
    """Round float64 lanes to binary32 — the vector ``_f32`` (overflow goes
    to ±inf under the suppressed-errstate astype, matching saturation)."""
    return a.astype(np.float32)


# -- vector evaluators ---------------------------------------------------------

def _compile_compute(instr, evaluate):
    """(dtype, req1, req2, tag, payload) for one compute instruction.

    ``tag`` is "const" (payload: the constant value) or "fn" (payload: a
    ``(a_vec, b_vec) -> vec`` ufunc chain).  Returns None when the opcode
    has no exact vector form.  Requirement codes: "i" = operand lanes must
    be int64 (the scalar path applies ``int()``), "x" = any dtype (the
    scalar path applies ``float()``, exact from both lane types), None =
    operand value unused.
    """
    op = instr.opcode
    imm = instr.imm
    if op in (Opcode.NOP, Opcode.LUI, Opcode.AUIPC):
        return (D_INT, None, None, "const", evaluate(0, 0))

    fn = _INT_BIN_VEC.get(op)
    if fn is not None:
        return (D_INT, "i", "i", "fn", fn)
    fn = _INT_IMM_VEC.get(op)
    if fn is not None:
        return (D_INT, "i", None, "fn", fn(imm))
    fn = _FP_BIN_VEC.get(op)
    if fn is not None:
        return (D_FP, "x", "x", "fn", fn)
    fn = _FP_CMP_VEC.get(op)
    if fn is not None:
        return (D_INT, "x", "x", "fn", fn)
    if op is Opcode.FSQRT_S:
        return (D_FP, "x", None, "fn", _vec_fsqrt)
    if op is Opcode.FCVT_S_W:
        return (D_FP, "i", None, "fn",
                lambda a, b: a.astype(np.float32))
    if op is Opcode.FCVT_S_WU:
        return (D_FP, "i", None, "fn",
                lambda a, b: _vtu(a).astype(np.float32))
    if op is Opcode.FMV_W_X:
        return (D_FP, "i", None, "fn",
                lambda a, b: a.astype(np.int32).view(np.float32))
    if op is Opcode.FMV_X_W:
        return (D_INT, "x", None, "fn",
                lambda a, b: a.astype(np.float32).view(np.int32)
                              .astype(np.int64))
    # FCVT_W_S / FCVT_WU_S truncate (and raise on NaN) via Python int();
    # the RV64 W-forms and MULH/DIV/REM families have no exact vector
    # counterpart here; raiser nodes (system ops) must fault like the
    # interpreter.  All fall back to the scalar loop.
    return None


def _vec_fdiv(a, b):
    a64, b64 = _f64(a), _f64(b)
    quotient = a64 / b64
    # Scalar: a / b if b != 0.0 else copysign(inf, a) if a else nan —
    # NaN dividends are truthy (copysign keeps their sign bit), ±0.0 is not.
    by_zero = np.where(a64 != 0.0, np.copysign(np.inf, a64), np.nan)
    return _r32(np.where(b64 != 0.0, quotient, by_zero))


def _vec_fsqrt(a, b):
    a64 = _f64(a)
    root = np.sqrt(a64)
    # Negative (and NaN) inputs produce the canonical NaN, like the scalar
    # path's float("nan") — np.sqrt's payload-propagating NaN must not leak.
    return _r32(np.where(a64 >= 0.0, root, np.nan))


if np is not None:
    _INT_BIN_VEC = {
        Opcode.ADD: lambda a, b: _vts(a + b),
        Opcode.SUB: lambda a, b: _vts(a - b),
        Opcode.SLL: lambda a, b: _vts(a << (b & 31)),
        Opcode.SLT: lambda a, b: (a < b).astype(np.int64),
        Opcode.SLTU: lambda a, b: (_vtu(a) < _vtu(b)).astype(np.int64),
        Opcode.XOR: lambda a, b: _vts(a ^ b),
        Opcode.SRL: lambda a, b: _vts(_vtu(a) >> (b & 31)),
        Opcode.SRA: lambda a, b: a >> (b & 31),
        Opcode.OR: lambda a, b: _vts(a | b),
        Opcode.AND: lambda a, b: _vts(a & b),
        Opcode.MUL: lambda a, b: _vts(a * b),
    }
    _INT_IMM_VEC = {
        Opcode.ADDI: lambda imm: lambda a, b: _vts(a + imm),
        Opcode.SLTI: lambda imm: lambda a, b: (a < imm).astype(np.int64),
        Opcode.SLTIU: lambda imm: (
            lambda iu: lambda a, b: (_vtu(a) < iu).astype(np.int64)
        )(imm & _M32),
        Opcode.XORI: lambda imm: lambda a, b: _vts(a ^ imm),
        Opcode.ORI: lambda imm: lambda a, b: _vts(a | imm),
        Opcode.ANDI: lambda imm: lambda a, b: _vts(a & imm),
        Opcode.SLLI: lambda imm: (
            lambda sh: lambda a, b: _vts(a << sh))(imm & 31),
        Opcode.SRLI: lambda imm: (
            lambda sh: lambda a, b: _vts(_vtu(a) >> sh))(imm & 31),
        Opcode.SRAI: lambda imm: (
            lambda sh: lambda a, b: a >> sh)(imm & 31),
    }
    _FP_BIN_VEC = {
        Opcode.FADD_S: lambda a, b: _r32(_f64(a) + _f64(b)),
        Opcode.FSUB_S: lambda a, b: _r32(_f64(a) - _f64(b)),
        Opcode.FMUL_S: lambda a, b: _r32(_f64(a) * _f64(b)),
        Opcode.FDIV_S: _vec_fdiv,
        # Python min/max return b only on a strict comparison win, so NaNs
        # select a — np.where with the same strict predicate matches.
        Opcode.FMIN_S: lambda a, b: (
            lambda a64, b64: _r32(np.where(b64 < a64, b64, a64))
        )(_f64(a), _f64(b)),
        Opcode.FMAX_S: lambda a, b: (
            lambda a64, b64: _r32(np.where(b64 > a64, b64, a64))
        )(_f64(a), _f64(b)),
        Opcode.FSGNJ_S: lambda a, b: _r32(np.copysign(np.abs(_f64(a)),
                                                      _f64(b))),
        Opcode.FSGNJN_S: lambda a, b: _r32(np.copysign(np.abs(_f64(a)),
                                                       -_f64(b))),
        # Scalar: a if b >= 0 else -a (NaN b takes the negate branch).
        Opcode.FSGNJX_S: lambda a, b: (
            lambda a64, b64: _r32(np.where(b64 >= 0.0, a64, -a64))
        )(_f64(a), _f64(b)),
    }
    _FP_CMP_VEC = {
        Opcode.FEQ_S: lambda a, b: (_f64(a) == _f64(b)).astype(np.int64),
        Opcode.FLT_S: lambda a, b: (_f64(a) < _f64(b)).astype(np.int64),
        Opcode.FLE_S: lambda a, b: (_f64(a) <= _f64(b)).astype(np.int64),
    }
    _BRANCH_VEC = {
        Opcode.BEQ: lambda a, b: a == b,
        Opcode.BNE: lambda a, b: a != b,
        Opcode.BLT: lambda a, b: a < b,
        Opcode.BGE: lambda a, b: a >= b,
        Opcode.BLTU: lambda a, b: _vtu(a) < _vtu(b),
        Opcode.BGEU: lambda a, b: _vtu(a) >= _vtu(b),
    }
    #: Self-loop reductions with an exact closed/scan form, keyed by opcode.
    _SCAN_OPS = {
        Opcode.ADDI: "addi",
        Opcode.ADD: "iadd",
        Opcode.SUB: "isub",
        Opcode.FADD_S: "fadd",
        Opcode.FSUB_S: "fsub",
        Opcode.FMUL_S: "fmul",
    }
else:  # pragma: no cover
    _INT_BIN_VEC = _INT_IMM_VEC = _FP_BIN_VEC = _FP_CMP_VEC = {}
    _BRANCH_VEC = _SCAN_OPS = {}


class _BatchNode:
    """Per-node batched execution recipe (compiled once per plan)."""

    __slots__ = ("plan_node", "i", "kind", "dtype", "np_dtype", "guard",
                 "tag", "fn", "scan", "scan_imm", "opcode", "mem_sign",
                 "req1", "req2", "cluster")

    def __init__(self, plan_node, i):
        self.plan_node = plan_node
        self.i = i
        self.kind = plan_node.kind
        self.dtype = D_INT
        self.np_dtype = None
        self.guard = -1          # active guard branch id, -1 when inert
        self.tag = ""            # "const"/"fn"/"cond"/"jump"/"mem"/"scan"
        self.fn = None           # payload per tag
        self.scan = ""           # _SCAN_OPS tag for scan nodes
        self.scan_imm = 0        # immediate of an "addi" closed-form scan
        self.opcode = None
        self.mem_sign = 0        # sign-extension bit for signed loads
        self.req1 = None         # operand dtype requirements ("i"/"x"/None)
        self.req2 = None
        self.cluster = -1        # index into BatchProgram.clusters


# Operand access codes for cluster microloop steps: how a member reads one
# operand at lane k of a block.
_C_CONST = 0      # run-constant (latched live-in or zero)
_C_NODE_IN = 1    # same-iteration value of another cluster member
_C_NODE_EX = 2    # same-iteration value of a vectorized producer
_C_LOOP_IN = 3    # previous lane of a cluster member (the recurrence)
_C_LOOP_EX = 4    # previous lane of a vectorized producer


class _Cluster:
    """One loop-carried strongly connected component, evaluated lane by
    lane with the plan's scalar evaluator closures (exact by construction:
    int64/float32 lanes round-trip through Python scalars losslessly, and
    the closures apply the same int()/float() conversions as the scalar
    drive loop)."""

    __slots__ = ("members", "member_set", "steps")

    def __init__(self, members, steps):
        self.members = members            # ascending node ids
        self.member_set = frozenset(members)
        #: (node_id, is_ctrl, guard_id, a_spec, b_spec, fb_spec, evaluate)
        #: per member; specs are (access code, src node id).
        self.steps = steps


class BatchProgram:
    """A plan compiled for batched execution (or its fallback verdict)."""

    __slots__ = ("plan", "capability", "nodes", "order", "mem_ids",
                 "has_store", "slot_events", "n_sources", "clusters",
                 "noc_rows")

    def __init__(self, plan, capability, nodes=None, order=None,
                 mem_ids=None, has_store=False, slot_events=None,
                 clusters=None, noc_rows=frozenset()):
        self.plan = plan
        self.capability = capability
        self.nodes = nodes or []
        #: Topological schedule over same-iteration + loop-carried edges
        #: (cluster members appear contiguously, ascending).
        self.order = order or []
        #: Memory node ids in program order (their completions are the
        #: dynamic timing sources alongside the iteration start).
        self.mem_ids = mem_ids or []
        self.has_store = has_store
        #: (edge, cadence, owner_node_id) per operand slot, for exact
        #: counter folds.
        self.slot_events = slot_events or []
        self.n_sources = 1 + len(self.mem_ids)
        #: Coupled-recurrence clusters, by first-member order.
        self.clusters = clusters or []
        #: Source rows whose ring channel carries more than one NoC slot
        #: per iteration — their grants go through the closed-form chain.
        self.noc_rows = noc_rows


def _operand_dtype(op, dtypes):
    """Lane dtype an operand resolves to (K_CONST by register file)."""
    if op.kind == K_CONST:
        reg = op.register
        return D_FP if (reg is not None and reg.file is RegFile.FP) else D_INT
    return dtypes[op.src_id]


def _wildcard_const(op):
    """A none/zero constant is exact in either lane dtype."""
    return op.kind == K_CONST and op.register is None


def compile_batch(plan) -> BatchProgram:
    """Capability-analyze and compile a plan for batched execution."""
    verdict = _compile(plan)
    if isinstance(verdict, BatchProgram):
        return verdict
    return BatchProgram(plan, BatchCapability(False, verdict))


def _compile(plan):
    """Returns a BatchProgram, or a fallback-reason string."""
    if np is None:
        return "numpy unavailable"
    if plan.loop_branch_id is None:
        return "no loop branch (single-shot region)"
    if plan.config.xlen != 32:
        return "xlen 64"
    program_nodes = plan.program.nodes
    n = plan.n_nodes

    nodes: list[_BatchNode] = []
    dtypes: list[int] = []
    # Pass 1: per-node recipe + result dtype (from the opcode alone).
    for i, pnode in enumerate(plan.nodes):
        instr = program_nodes[i].instruction
        rec = _BatchNode(pnode, i)
        rec.opcode = instr.opcode
        if pnode.kind == N_MEMORY:
            mem = pnode.memory
            if mem.size > 4:
                return "wide memory access"
            rec.tag = "mem"
            rec.req1 = "i"  # address base goes through int()
            if mem.is_load:
                size, signed = _LOAD_FORMATS[instr.opcode]
                if instr.opcode is Opcode.FLW:
                    rec.dtype = D_FP
                elif signed:
                    rec.mem_sign = 1 << (size * 8 - 1)
            else:
                rec.req2 = "x" if instr.opcode is Opcode.FSW else "i"
        elif pnode.kind == N_CONTROL:
            cond = _BRANCH_VEC.get(instr.opcode)
            if cond is not None:
                rec.tag, rec.fn = "cond", cond
                rec.req1 = rec.req2 = "i"  # branch conds compare int()s
            elif instr.is_jump:
                rec.tag = "jump"
            else:
                return f"unsupported opcode {instr.opcode.name}"
        else:
            compiled = _compile_compute(instr, pnode.evaluate)
            if compiled is None:
                return f"unsupported opcode {instr.opcode.name}"
            rec.dtype, rec.req1, rec.req2, rec.tag, rec.fn = compiled
            if rec.tag == "fn" and instr.opcode is Opcode.ADDI:
                rec.scan_imm = instr.imm
        nodes.append(rec)
        dtypes.append(rec.dtype)

    for rec in nodes:
        rec.np_dtype = np.float32 if rec.dtype == D_FP else np.int64
        # Guards at or after their node never fire (the scalar loop reads
        # the iteration's still-False branch state) — the plan hoists that
        # rule into ``effective_guard``.
        rec.guard = rec.plan_node.effective_guard

    # Pass 2: build the combined dependence graph (same-iteration K_NODE
    # edges, loop-carried K_LOOP edges — self edges included — and guard
    # edges), then recognize which loop-carried cycles have a closed scan
    # form and which become microloop clusters.
    preds_of: list[set] = [set() for _ in range(n)]
    for rec in nodes:
        pnode = rec.plan_node
        ops = [pnode.src1, pnode.src2]
        if rec.guard >= 0:
            ops.append(pnode.fallback)
        for op in ops:
            if op.kind == K_NODE and op.src_id >= rec.i:
                # The scalar loops only ever read completed same-iteration
                # producers; a forward edge has no defined value.
                return "forward same-iteration edge"
            if op.kind in (K_NODE, K_LOOP):
                preds_of[rec.i].add(op.src_id)
        if rec.guard >= 0:
            preds_of[rec.i].add(rec.guard)

    # Scan candidacy: a pure src1 self-loop through a recognized reduction
    # opcode evaluates in closed/scan form.  A failed candidate is *not* a
    # rejection — it simply keeps its self edge and lands in a cluster.
    for rec in nodes:
        pnode = rec.plan_node
        if not (pnode.src1.kind == K_LOOP and pnode.src1.src_id == rec.i
                and rec.tag == "fn" and rec.opcode in _SCAN_OPS
                and pnode.guard_branch < 0
                and not (pnode.src2.kind == K_LOOP
                         and pnode.src2.src_id == rec.i)):
            continue
        scan = _SCAN_OPS[rec.opcode]
        seed = pnode.src1.register
        ok = not (seed is not None
                  and (seed.file is RegFile.FP) != (rec.dtype == D_FP))
        if ok:
            if scan == "addi":
                ok = abs(rec.scan_imm) < 1 << 31
            else:
                x_dtype = _operand_dtype(pnode.src2, dtypes)
                ok = x_dtype == rec.dtype or _wildcard_const(pnode.src2)
        if ok:
            rec.scan = scan
            preds_of[rec.i].discard(rec.i)

    # Tarjan SCCs over the remaining graph: every nontrivial component
    # (and every self-edged singleton) is a coupled recurrence cluster.
    succs: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for p in preds_of[i]:
            succs[p].append(i)
    for lst in succs:
        lst.sort()
    comps = _tarjan_sccs(n, succs)

    clusters: list[list[int]] = []
    for comp in comps:
        if len(comp) > 1 or comp[0] in preds_of[comp[0]]:
            clusters.append(comp)
    clusters.sort()
    for ci, comp in enumerate(clusters):
        for i in comp:
            if nodes[i].kind == N_MEMORY:
                # A lane's load value / store commit would gate the next
                # lane's — the port walk cannot be replayed exactly.
                return "loop-carried recurrence through memory"
            nodes[i].cluster = ci
            nodes[i].scan = ""  # a swallowed candidate runs in the loop

    # Pass 2b: operands of *vectorized* nodes are checked for exact dtype
    # agreement with the scalar path's int()/float() conversions.  Cluster
    # members call the scalar evaluators directly and skip these — except
    # the guard-fallback check, whose value lands in the typed lane array.
    for rec in nodes:
        pnode = rec.plan_node
        # Predicated-off lanes mix the fallback into the result vector
        # (stores excepted: a suppressed store's value is always 0).
        if rec.guard >= 0 and not (rec.kind == N_MEMORY
                                   and not pnode.memory.is_load):
            if not _wildcard_const(pnode.fallback) and \
                    _operand_dtype(pnode.fallback, dtypes) != rec.dtype:
                return "guard fallback dtype mismatch"
        if rec.cluster >= 0 or rec.scan:
            continue
        # The scalar path converts operands with int()/float() — the lane
        # dtype must make those conversions the identity.
        for op, req in ((pnode.src1, rec.req1), (pnode.src2, rec.req2)):
            if req == "i" and _operand_dtype(op, dtypes) != D_INT:
                return "operand dtype mismatch"
        # Loop-carried seeds must be exact in the producer's lane dtype.
        for op in (pnode.src1, pnode.src2,
                   pnode.fallback if rec.guard >= 0 else None):
            if op is not None and op.kind == K_LOOP:
                seed = op.register
                if seed is not None and (
                        (seed.file is RegFile.FP)
                        != (dtypes[op.src_id] == D_FP)):
                    return "loop-carried seed dtype mismatch"

    cluster_objs = [_make_cluster(comp, nodes) for comp in clusters]

    # Pass 3: deterministic topological schedule over the condensation
    # (always a DAG).  Singleton components pop in exactly the order the
    # previous min()-of-ready scan produced; cluster members are emitted
    # contiguously, ascending, at their component's turn.
    comp_key = [0] * n
    comp_members: dict[int, list[int]] = {}
    for comp in comps:
        key = comp[0]
        comp_members[key] = comp
        for i in comp:
            comp_key[i] = key
    cindeg = {key: 0 for key in comp_members}
    csuccs: dict[int, set] = {key: set() for key in comp_members}
    for i in range(n):
        ck = comp_key[i]
        for p in preds_of[i]:
            pk = comp_key[p]
            if pk != ck and ck not in csuccs[pk]:
                csuccs[pk].add(ck)
                cindeg[ck] += 1
    heap = [key for key, deg in cindeg.items() if deg == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        key = heapq.heappop(heap)
        order.extend(comp_members[key])
        for sk in csuccs[key]:
            cindeg[sk] -= 1
            if cindeg[sk] == 0:
                heapq.heappush(heap, sk)

    # Pass 4: with stores present, no memory address may transitively
    # depend on a load — the per-block alias check reads all addresses
    # before any store commits, which is only sound when addresses cannot
    # change under a scalar replay of the same block.
    mem_ids = [rec.i for rec in nodes if rec.kind == N_MEMORY]
    has_store = any(nodes[i].plan_node.is_store for i in mem_ids)
    if has_store:
        for i in mem_ids:
            cone: set[int] = set()
            src1 = nodes[i].plan_node.src1
            stack = [src1.src_id] if src1.kind in (K_NODE, K_LOOP) else []
            while stack:
                node_id = stack.pop()
                if node_id in cone:
                    continue
                cone.add(node_id)
                if nodes[node_id].kind == N_MEMORY:
                    return "load-dependent store addressing"
                stack.extend(preds_of[node_id])

    # Pass 5: rows whose ring channel carries more than one firing NoC
    # slot serialize through the closed-form grant chain, which replays
    # the scalar loop's static request order (node id, src1 before src2).
    # A *fallback* slot fires only on predicated-off iterations — its
    # position in the chain is data-dependent, so such rows fall back.
    # (Inert-guard fallback edges never fire and are ignored entirely.)
    row_total: dict[int, int] = {}
    row_fb: dict[int, int] = {}
    for rec in nodes:
        pnode = rec.plan_node
        row_ops = [(pnode.src1, False), (pnode.src2, False)]
        if rec.guard >= 0:
            row_ops.append((pnode.fallback, True))
        for op, is_fb in row_ops:
            e = op.edge
            if e is not None and not e.is_local:
                row_total[e.src_row] = row_total.get(e.src_row, 0) + 1
                if is_fb:
                    row_fb[e.src_row] = row_fb.get(e.src_row, 0) + 1
    noc_rows = frozenset(row for row, count in row_total.items()
                         if count > 1)
    for row in noc_rows:
        if row_fb.get(row):
            return "data-dependent NoC channel order"

    # Per-slot event cadences for the counter fold.
    slot_events = []
    for rec in nodes:
        pnode = rec.plan_node
        for op in (pnode.src1, pnode.src2):
            if op.edge is not None:
                slot_events.append(
                    (op.edge, EV_LOOP if op.kind == K_LOOP else EV_ALWAYS,
                     rec.i))
        if rec.guard >= 0 and pnode.fallback.edge is not None:
            slot_events.append(
                (pnode.fallback.edge,
                 EV_FB_LOOP if pnode.fallback.kind == K_LOOP else EV_FB,
                 rec.i))

    return BatchProgram(plan, BatchCapability(True), nodes, order, mem_ids,
                        has_store, slot_events, cluster_objs, noc_rows)


def _tarjan_sccs(n, succs):
    """Iterative Tarjan: strongly connected components, each sorted
    ascending (deterministic: roots and successor lists ascend)."""
    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    comps: list[list[int]] = []
    counter = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        work = [(root, iter(succs[root]))]
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if index_of[child] == -1:
                    index_of[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(succs[child])))
                    advanced = True
                    break
                if on_stack[child] and index_of[child] < low[node]:
                    low[node] = index_of[child]
            if advanced:
                continue
            work.pop()
            if work and low[node] < low[work[-1][0]]:
                low[work[-1][0]] = low[node]
            if low[node] == index_of[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp.append(member)
                    if member == node:
                        break
                comp.sort()
                comps.append(comp)
    return comps


def _make_cluster(comp, nodes):
    """Compile one SCC's members into microloop steps."""
    member_set = frozenset(comp)

    def spec(op):
        if op.kind == K_NODE:
            return ((_C_NODE_IN if op.src_id in member_set
                     else _C_NODE_EX), op.src_id)
        if op.kind == K_LOOP:
            return ((_C_LOOP_IN if op.src_id in member_set
                     else _C_LOOP_EX), op.src_id)
        return (_C_CONST, -1)

    steps = []
    for i in comp:
        rec = nodes[i]
        pnode = rec.plan_node
        fb_spec = spec(pnode.fallback) if rec.guard >= 0 else None
        steps.append((i, rec.kind == N_CONTROL, rec.guard,
                      spec(pnode.src1), spec(pnode.src2), fb_spec,
                      pnode.evaluate))
    return _Cluster(comp, steps)


# -- block driver --------------------------------------------------------------

def resolve_block(options) -> int:
    """Iterations per block: option knob, then env, then the default."""
    block = options.batch_block
    if not block:
        try:
            block = int(os.environ.get(BLOCK_ENV) or 0)
        except ValueError:
            block = 0
    if not block:
        block = DEFAULT_BLOCK
    return max(1, min(block, MAX_BLOCK))


def drive_batched(bp: BatchProgram, hierarchy, state, reg_env, ports,
                  latency, activity, options):
    """Drive the loop in vectorized blocks.

    Returns ``(iterations, iteration_latencies, bail)`` — ``bail`` is None
    on completion, else ``(clock, prev_values, reason)`` for the scalar
    loop to resume from (no state of the bailed block has been committed).
    """
    plan = bp.plan
    nodes = bp.nodes
    n = plan.n_nodes
    order = bp.order
    mem_ids = bp.mem_ids
    n_sources = bp.n_sources
    mem_source = {i: j + 1 for j, i in enumerate(mem_ids)}
    loop_id = plan.loop_branch_id
    const1, const2, const_fb = plan.bind_constants(reg_env)
    block = resolve_block(options)
    max_iterations = options.max_iterations
    speculative = options.speculative_loads
    store_issue = plan.store_issue
    memory = state.memory
    gather = getattr(memory, "gather", None)
    access = hierarchy.access
    ideal_latency = hierarchy.ideal_latency

    # Run-level accumulators, folded into the counters once at the end.
    node_total = [0.0] * n
    slot_count = [0] * len(plan.edge_slots)
    slot_wait = [0.0] * len(plan.edge_slots)
    acc = {"int_ops": 0, "fp_ops": 0, "forwards": 0, "loads": 0,
           "stores": 0, "local_hops": 0, "noc_hops": 0, "pe_busy": 0.0,
           "control_events": 0, "noc_wait": 0.0}
    iteration_latencies: list[float] = []
    prev: list = [0] * n
    clock = 0.0
    iterations = 0
    bail = None
    finished = False

    while not finished:
        first = iterations == 0
        nb = min(block, max_iterations - iterations)

        # -- phase A: values -------------------------------------------------
        with np.errstate(all="ignore"):
            vals, offs, taken, mem_vecs = _phase_values(
                bp, nb, first, prev, const1, const2, const_fb, memory,
                gather)

        loop_vec = taken[loop_id]
        exited = not loop_vec.all()
        if exited:
            nb = int(np.argmin(loop_vec)) + 1
            for i in range(n):
                vals[i] = vals[i][:nb]
                if offs[i] is not None:
                    offs[i] = offs[i][:nb]
            for rec_vec in mem_vecs.values():
                rec_vec[0] = rec_vec[0][:nb]
                if rec_vec[1] is not None:
                    rec_vec[1] = rec_vec[1][:nb]
                if rec_vec[2] is not None:
                    rec_vec[2] = rec_vec[2][:nb]

        # -- alias check: prove the LSQ inert for this block -----------------
        if bp.has_store:
            load_streams = []
            store_streams = []
            for i in mem_ids:
                mem_plan = nodes[i].plan_node.memory
                addr, _raw, on = mem_vecs[i]
                if mem_plan.is_load:
                    load_streams.append((addr, mem_plan.size, i, on))
                else:
                    store_streams.append((addr, mem_plan.size, i, on))
            if load_streams and block_alias_hazard(load_streams,
                                                   store_streams):
                bail = (clock, list(prev) if iterations else None,
                        f"memory aliasing at iteration {iterations}")
                break

        # -- phase T: static timing weights per source -----------------------
        W, mem_ready, mem_off, wend, noc_waits = _phase_timing(
            bp, nb, first, offs)

        # -- phase B: sequential memory walk (grants, AMAT, stores) ----------
        if mem_ids:
            starts, ends, done_mat = _phase_memory(
                bp, nb, clock, iterations, mem_vecs, mem_ready, mem_off,
                wend, ports, access, ideal_latency, speculative,
                store_issue, memory, options)
            lat_vec = ends - starts
        else:
            lat_vec = wend[0]
            starts = clock + np.concatenate(
                ([0.0], np.cumsum(lat_vec[:-1])))
            ends = starts + lat_vec
            done_mat = None

        # -- phase C: counter folds ------------------------------------------
        T = np.empty((n_sources, nb))
        T[0] = starts
        for j in range(len(mem_ids)):
            T[j + 1] = done_mat[j]
        # Ring-channel waits: grant minus departure per contended slot, in
        # concrete time (both are maxima over the timing sources).
        for slot, dep, grant, skip0 in noc_waits:
            wvec = (grant + T).max(axis=0) - (dep + T).max(axis=0)
            if skip0:
                wvec[0] = 0.0  # the slot does not fire on iteration 0
            wsum = float(wvec.sum())
            if wsum:
                slot_wait[slot] += wsum
                acc["noc_wait"] += wsum
        for i in range(n):
            if nodes[i].kind == N_MEMORY:
                total = (done_mat[mem_source[i] - 1] - starts).sum()
            else:
                total = ((W[i] + T).max(axis=0) - starts).sum()
            node_total[i] += float(total)
        _fold_events(bp, nb, first, offs, slot_count, acc)
        iteration_latencies.extend(lat_vec.tolist())

        # Commit the block.
        clock = float(ends[-1])
        iterations += nb
        for i in range(n):
            prev[i] = vals[i][nb - 1].item()
        finished = exited or iterations >= max_iterations

    if bail is None:
        for register, node_id in plan.program.live_out.items():
            if 0 <= node_id < n:
                state.write(register, prev[node_id])

    # Fold the accumulators (additive, like the scalar loop's bulk fold).
    edge_total: dict = {}
    edge_count: dict = {}
    for edge in plan.edge_slots:
        count = slot_count[edge.slot]
        if count:
            key = edge.key
            edge_total[key] = (edge_total.get(key, 0.0)
                               + count * edge.cycles
                               + slot_wait[edge.slot])
            edge_count[key] = edge_count.get(key, 0) + count
    latency.bulk_record(node_total, iterations, edge_total, edge_count)
    activity.int_ops += acc["int_ops"]
    activity.fp_ops += acc["fp_ops"]
    activity.forwards += acc["forwards"]
    activity.loads += acc["loads"]
    activity.stores += acc["stores"]
    activity.local_hops += acc["local_hops"]
    activity.noc_hops += acc["noc_hops"]
    activity.noc_wait_cycles += acc["noc_wait"]
    activity.pe_busy_cycles += acc["pe_busy"]
    activity.control_events += acc["control_events"]
    return iterations, iteration_latencies, bail


def _phase_values(bp, nb, first, prev, const1, const2, const_fb, memory,
                  gather):
    """Compute every node's (nb,)-value vector in topological order."""
    nodes = bp.nodes
    n = len(nodes)
    vals: list = [None] * n
    offs: list = [None] * n
    taken: list = [None] * n
    mem_vecs: dict[int, list] = {}
    int64 = np.int64

    def operand(op, const_val, owner_dtype=None):
        kind = op.kind
        if kind == K_NODE:
            return vals[op.src_id]
        if kind == K_LOOP:
            src = op.src_id
            out = np.empty(nb, nodes[src].np_dtype)
            out[0] = const_val if first else prev[src]
            if nb > 1:
                out[1:] = vals[src][:nb - 1]
            return out
        reg = op.register
        if owner_dtype is not None and reg is None:
            dtype = owner_dtype
        else:
            dtype = (np.float32 if reg is not None
                     and reg.file is RegFile.FP else int64)
        return np.full(nb, const_val, dtype)

    done_clusters: set[int] = set()
    for i in bp.order:
        rec = nodes[i]
        pnode = rec.plan_node
        ci = rec.cluster
        if ci >= 0:
            if ci not in done_clusters:
                done_clusters.add(ci)
                _run_cluster(bp.clusters[ci], nodes, nb, first, prev,
                             const1, const2, const_fb, vals, taken, offs)
            continue
        if rec.scan:
            vals[i] = _run_scan(rec, nb, first, prev, const1, const2,
                                operand)
            continue
        if rec.kind == N_MEMORY:
            mem_plan = pnode.memory
            base = operand(pnode.src1, const1[i])
            addr = _vtu(base + mem_plan.imm)
            off = on = None
            if rec.guard >= 0:
                off = taken[rec.guard]
                offs[i] = off
                on = ~off
            if mem_plan.is_load:
                addr_list = addr.tolist()
                if on is not None:
                    mask = on.tolist()
                    if gather is not None:
                        raw = gather(addr_list, mem_plan.size, mask)
                    else:
                        load = memory.load
                        size = mem_plan.size
                        raw = [load(a, size) if live else 0
                               for a, live in zip(addr_list, mask)]
                elif gather is not None:
                    raw = gather(addr_list, mem_plan.size)
                else:
                    load = memory.load
                    size = mem_plan.size
                    raw = [load(a, size) for a in addr_list]
                if rec.dtype == D_FP:
                    value = np.array(raw, np.uint32).view(np.float32)
                else:
                    value = np.array(raw, int64)
                    if rec.mem_sign:
                        sign = rec.mem_sign
                        value = (value & (sign - 1)) - (value & sign)
                if off is not None:
                    fb = operand(pnode.fallback, const_fb[i], rec.np_dtype)
                    value = np.where(off, fb, value)
                vals[i] = value
                mem_vecs[i] = [addr, None, on]
            else:
                data = operand(pnode.src2, const2[i])
                if rec.opcode is Opcode.FSW:
                    raw_vec = (data.astype(np.float32).view(np.uint32)
                               .astype(int64))
                else:
                    raw_vec = data & ((1 << (mem_plan.size * 8)) - 1)
                vals[i] = np.zeros(nb, int64)
                mem_vecs[i] = [addr, raw_vec, on]
            continue

        off = None
        if rec.guard >= 0:
            off = taken[rec.guard]
            offs[i] = off
        if rec.kind == N_CONTROL:
            if rec.tag == "jump":
                cond = np.ones(nb, bool)
            else:
                a = operand(pnode.src1, const1[i])
                b = operand(pnode.src2, const2[i])
                cond = rec.fn(a, b)
            if off is not None:
                taken[i] = cond & ~off
                fb = operand(pnode.fallback, const_fb[i], rec.np_dtype)
                vals[i] = np.where(off, fb, cond.astype(int64))
            else:
                taken[i] = cond
                vals[i] = cond.astype(int64)
            continue
        if rec.tag == "const":
            result = np.full(nb, rec.fn, rec.np_dtype)
        else:
            a = operand(pnode.src1, const1[i])
            b = operand(pnode.src2, const2[i])
            result = rec.fn(a, b)
        if off is not None:
            fb = operand(pnode.fallback, const_fb[i], rec.np_dtype)
            result = np.where(off, fb, result)
        vals[i] = result
    return vals, offs, taken, mem_vecs


def _run_scan(rec, nb, first, prev, const1, const2, operand):
    """Evaluate a recognized self-loop reduction in closed/scan form."""
    pnode = rec.plan_node
    i = rec.i
    carry = const1[i] if first else prev[i]
    scan = rec.scan
    if scan == "addi":
        # Closed form: |imm| < 2**31 and nb <= 2**20 keep every partial
        # within int64; _vts wraps each step exactly like the scalar chain.
        steps = np.arange(1, nb + 1, dtype=np.int64)
        return _vts(carry + rec.scan_imm * steps)
    if scan in ("iadd", "isub"):
        x = operand(pnode.src2, const2[i])
        running = np.cumsum(x)
        return _vts(carry + running if scan == "iadd" else carry - running)
    # FP scans accumulate directly in float32: each step equals the
    # scalar float64-op-then-round chain (innocuous double rounding).
    x = operand(pnode.src2, const2[i])
    if x.dtype != np.float32:
        x = x.astype(np.float32)  # exact: only the zero-constant case
    acc = np.empty(nb + 1, np.float32)
    acc[0] = carry
    acc[1:] = x
    ufunc = {"fadd": np.add, "fsub": np.subtract,
             "fmul": np.multiply}[scan]
    return ufunc.accumulate(acc)[1:]


def _run_cluster(cluster, nodes, nb, first, prev, const1, const2, const_fb,
                 vals, taken, offs):
    """Evaluate a coupled-recurrence cluster lane by lane.

    Members run in ascending node-id order per lane using the plan's
    scalar evaluator closures, which is bit-identical to the scalar drive
    loop: int64/float32 lanes round-trip through Python scalars exactly,
    and the closures apply the same int()/float() conversions.  External
    producers (node or loop-carried) are already vectorized; internal
    loop-carried reads hit the previous lane's column.
    """
    members = cluster.members
    member_set = cluster.member_set
    cols: dict[int, list] = {i: [] for i in members}
    tk: dict[int, list] = {}
    offl: dict[int, list] = {}
    ext: dict[int, list] = {}

    def ext_list(src):
        lst = ext.get(src)
        if lst is None:
            lst = ext[src] = vals[src].tolist()
        return lst

    # Bind each spec to (access, column, seed): access 0 reads ``seed``
    # always, 1 reads ``column[k]``, 2 reads ``seed`` at lane 0 and
    # ``column[k - 1]`` after.
    def bind(spec, i, consts):
        code, src = spec
        if code == _C_CONST:
            return (0, None, consts[i])
        if code == _C_NODE_IN:
            return (1, cols[src], None)
        if code == _C_NODE_EX:
            return (1, ext_list(src), None)
        seed = consts[i] if first else prev[src]
        if code == _C_LOOP_IN:
            return (2, cols[src], seed)
        return (2, ext_list(src), seed)

    bound = []
    for i, is_ctrl, guard, a_spec, b_spec, fb_spec, evaluate in \
            cluster.steps:
        if is_ctrl:
            tk[i] = []
        glist = None
        if guard >= 0:
            offl[i] = []
            glist = (tk[guard] if guard in member_set
                     else taken[guard].tolist())
        bound.append((cols[i], is_ctrl, tk.get(i), glist,
                      bind(a_spec, i, const1), bind(b_spec, i, const2),
                      bind(fb_spec, i, const_fb) if fb_spec is not None
                      else None,
                      offl.get(i), evaluate))

    def read(operand, k):
        access, column, seed = operand
        if access == 0:
            return seed
        if access == 1:
            return column[k]
        return seed if k == 0 else column[k - 1]

    for k in range(nb):
        for col, is_ctrl, tl, glist, a_b, b_b, fb_b, ol, evaluate in bound:
            if glist is not None and glist[k]:
                value = read(fb_b, k)
                ol.append(True)
                if is_ctrl:
                    tl.append(False)  # a disabled branch is untaken
            else:
                if ol is not None:
                    ol.append(False)
                a = read(a_b, k)
                b = read(b_b, k)
                if is_ctrl:
                    t = evaluate(a, b)
                    tl.append(t)
                    value = int(t)
                else:
                    value = evaluate(a, b)
            col.append(value)

    for i in members:
        vals[i] = np.array(cols[i], nodes[i].np_dtype)
    for i, tl in tk.items():
        taken[i] = np.array(tl, bool)
    for i, ol in offl.items():
        offs[i] = np.array(ol, bool)


def _phase_timing(bp, nb, first, offs):
    """Per-node completion weights over the timing sources.

    ``W[i]`` is an (n_sources, nb) float64 array: completion of node i at
    iteration k is ``max_s(T[s, k] + W[i][s, k])`` where T holds the
    iteration start (source 0) and each memory node's completion.  -inf
    marks an unreachable source.

    Contended ring channels (``bp.noc_rows``) serialize their slots through
    a per-lane grant chain kept in the same weight space: the chain state
    ``M`` holds the previous grant, the next grant is ``max(depart,
    M + 1)`` elementwise (the single-port issue interval), and the max
    distributes over the source decomposition, so concrete grants are
    exactly ``max_s(T[s] + G[s])``.  Channel state never carries between
    iterations (the next start is at least the last grant + 1), so lanes
    are independent.  Nodes are walked in node-id order — the scalar
    loop's request order — which pass 2's forward-edge check makes a valid
    topological order.
    """
    nodes = bp.nodes
    n = len(nodes)
    S = bp.n_sources
    mem_source = {i: j + 1 for j, i in enumerate(bp.mem_ids)}
    W: list = [None] * n
    mem_ready: dict[int, object] = {}
    mem_off: dict[int, object] = {}
    chains = {row: np.full((S, nb), _NEG) for row in bp.noc_rows}
    noc_waits: list = []

    def chained(edge, dep, skip0):
        """Arrival weights through a contended ring channel."""
        chain = chains[edge.src_row]
        grant = np.maximum(dep, chain + 1.0)
        arrival = grant + edge.cycles
        if skip0:
            # Iteration 0 takes the constant seed: no packet, no grant.
            new_chain = grant.copy()
            new_chain[:, 0] = chain[:, 0]
            chains[edge.src_row] = new_chain
            arrival[:, 0] = _NEG
            arrival[0, 0] = 0.0
        else:
            chains[edge.src_row] = grant
        noc_waits.append((edge.slot, dep, grant, skip0))
        return arrival

    def opw(op):
        edge = op.edge
        contended = (edge is not None and not edge.is_local
                     and edge.src_row in chains)
        if op.kind == K_NODE:
            if contended:
                return chained(edge, W[op.src_id], False)
            return W[op.src_id] + edge.cycles
        row = np.full((S, nb), _NEG)
        if op.kind == K_LOOP:
            if contended:
                row[0] = 0.0  # departure is the iteration start
                return chained(edge, row, first)
            row[0] = edge.cycles
            if first:
                row[0, 0] = 0.0
        else:
            row[0] = 0.0
        return row

    for i in range(n):
        rec = nodes[i]
        pnode = rec.plan_node
        ready = np.maximum(opw(pnode.src1), opw(pnode.src2))
        np.maximum(ready[0], 0.0, out=ready[0])  # the start floor
        if rec.kind == N_MEMORY:
            mem_ready[i] = ready
            if offs[i] is not None:
                # Completion of a predicated-off lane: operands ready vs
                # the fallback transfer (no grant, no AMAT).
                mem_off[i] = np.maximum(ready, opw(pnode.fallback))
            w = np.full((S, nb), _NEG)
            w[mem_source[i]] = 0.0
            W[i] = w
            continue
        off = offs[i]
        if off is not None:
            w_fb = opw(pnode.fallback)
            W[i] = np.where(off[None, :],
                            np.maximum(ready, w_fb),
                            ready + pnode.latency)
        else:
            W[i] = ready + pnode.latency
    wend = W[0]
    for i in range(1, n):
        wend = np.maximum(wend, W[i])
    return W, mem_ready, mem_off, wend, noc_waits


def _phase_memory(bp, nb, clock, iterations, mem_vecs, mem_ready, mem_off,
                  wend, ports, access, ideal_latency, speculative,
                  store_issue, memory, options):
    """Sequential walk of the block's memory events (the only per-iteration
    Python loop left): port grants, cache accesses, store commits.
    Predicated-off lanes complete at max(operands ready, fallback arrival)
    without requesting a port, touching the cache, or committing."""
    nodes = bp.nodes
    mem_ids = bp.mem_ids
    request = ports.request
    store = memory.store

    def compress(matrix):
        """(source, row-list) pairs for the finite rows of a weight array."""
        out = []
        for s in range(matrix.shape[0]):
            row = matrix[s]
            if not np.all(np.isneginf(row)):
                out.append((s, row.tolist()))
        return out

    records = []
    for i in mem_ids:
        mem_plan = nodes[i].plan_node.memory
        addr, raw, on = mem_vecs[i]
        records.append((
            mem_plan.is_load, mem_plan.size, mem_plan.pc,
            mem_plan.vector_group, mem_plan.prefetched,
            addr.tolist(), raw.tolist() if raw is not None else None,
            on.tolist() if on is not None else None,
            compress(mem_ready[i]),
            compress(mem_off[i]) if i in mem_off else None,
            [0.0] * nb,
        ))
    wend_rows = compress(wend)

    starts_list = [0.0] * nb
    ends_list = [0.0] * nb
    start = clock
    for k in range(nb):
        starts_list[k] = start
        vector_grants: dict[int, float] = {}
        store_horizon = None
        dones: list[float] = []
        for (is_load, size, pc, group, prefetched, addr, raw, on, comps,
             off_comps, done_row) in records:
            if on is not None and not on[k]:
                done = _NEG
                for s, row in off_comps:
                    w = row[k]
                    if w != _NEG:
                        t = start + w if s == 0 else dones[s - 1] + w
                        if t > done:
                            done = t
                dones.append(done)
                done_row[k] = done
                continue
            ready = _NEG
            for s, row in comps:
                w = row[k]
                if w != _NEG:
                    t = start + w if s == 0 else dones[s - 1] + w
                    if t > ready:
                        ready = t
            if is_load:
                if not speculative and store_horizon is not None \
                        and store_horizon > ready:
                    ready = store_horizon
                if group is not None and group in vector_grants:
                    grant = vector_grants[group]
                    if ready > grant:
                        grant = ready
                else:
                    grant = request(ready)
                    if group is not None:
                        vector_grants[group] = grant
                cycles = access(addr[k], pc=pc)
                if prefetched and iterations + k > 0 \
                        and cycles > ideal_latency:
                    cycles = ideal_latency
                done = grant + cycles
            else:
                grant = request(ready)
                access(addr[k], True, pc)
                store(addr[k], size, raw[k])
                done = grant + store_issue
                if store_horizon is None or done > store_horizon:
                    store_horizon = done
            dones.append(done)
            done_row[k] = done
        end = start
        for s, row in wend_rows:
            w = row[k]
            if w != _NEG:
                t = start + w if s == 0 else dones[s - 1] + w
                if t > end:
                    end = t
        ends_list[k] = end
        start = end
    done_mat = np.array([record[10] for record in records])
    return np.array(starts_list), np.array(ends_list), done_mat


def _fold_events(bp, nb, first, offs, slot_count, acc):
    """Accumulate edge-slot and activity event counts for one block."""
    nodes = bp.nodes
    off_counts: dict[int, int] = {}
    for i, off in enumerate(offs):
        if off is not None:
            off_counts[i] = int(off.sum())
    for edge, cadence, owner in bp.slot_events:
        if cadence == EV_ALWAYS:
            count = nb
        elif cadence == EV_LOOP:
            count = nb - 1 if first else nb
        else:
            count = off_counts.get(owner, 0)
            if cadence == EV_FB_LOOP and first and count \
                    and bool(offs[owner][0]):
                count -= 1
        if count:
            slot_count[edge.slot] += count
            if edge.is_local:
                acc["local_hops"] += edge.manhattan * count
            else:
                acc["noc_hops"] += edge.router_hops * count
    for rec in nodes:
        off = off_counts.get(rec.i, 0)
        live = nb - off
        if off:
            acc["forwards"] += off
            acc["control_events"] += off
        if rec.kind == N_MEMORY:
            key = "loads" if rec.plan_node.memory.is_load else "stores"
            acc[key] += live
        elif rec.kind == N_CONTROL:
            acc["control_events"] += live
        else:
            key = "fp_ops" if rec.plan_node.is_fp else "int_ops"
            acc[key] += live
            acc["pe_busy"] += rec.plan_node.latency * live
