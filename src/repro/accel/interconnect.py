"""Interconnect latency models.

MESA "does not restrict the type of interconnect used in the backend as long
as it can model the point-to-point communication latency between two PEs"
(paper §3.3).  Each model here is exactly that: a function
``latency(src, dst) -> cycles``, the paper's hardware-implementable ``l(C)``.

Three topologies are provided, matching the paper's examples and evaluation
backend:

* :class:`MeshInterconnect` — latency = Manhattan distance (Fig. 2, Fig. 4
  example 2);
* :class:`RowSliceInterconnect` — 1 cycle within a row, a fixed cost across
  rows (Fig. 4 example 1);
* :class:`MeshNocInterconnect` — the evaluation backend (Fig. 9): direct
  neighbor links at 1 cycle/hop combined with a half-ring NoC with a router
  per 4-PE slice for distant traversals; a transfer uses whichever is faster.

Load/store entries sit at column ``-1`` of their row (a strip along the
array's edge, Fig. 5) and are reachable by both interconnects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .config import AcceleratorConfig, Coord, InterconnectKind

__all__ = [
    "Interconnect",
    "MeshInterconnect",
    "RowSliceInterconnect",
    "MeshNocInterconnect",
    "build_interconnect",
]


class Interconnect(ABC):
    """Point-to-point latency model for one backend topology."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        #: Cached ``latency_matrix`` results keyed by source coordinate —
        #: the matrix is a pure function of the (immutable) config.
        self._matrix_cache: dict[Coord, np.ndarray] = {}

    @abstractmethod
    def latency(self, src: Coord, dst: Coord) -> int:
        """Data-transfer latency in cycles from ``src`` to ``dst``."""

    def latency_matrix(self, src: Coord) -> np.ndarray:
        """Vectorized ``l(C)``: latency from ``src`` to every PE of the grid.

        Returns a read-only ``(rows, cols)`` int array — the latency term of
        the mapper's Eq. 1 candidate evaluation, computed for the whole
        candidate matrix at once.  ``src`` may be a load/store-entry
        coordinate (column ``-1``).  Results are cached per source.
        """
        cached = self._matrix_cache.get(src)
        if cached is None:
            cached = self._compute_matrix(src)
            cached.setflags(write=False)
            self._matrix_cache[src] = cached
        return cached

    def _compute_matrix(self, src: Coord) -> np.ndarray:
        """Fallback dense computation; topologies override with closed forms."""
        rows, cols = self.config.rows, self.config.cols
        return np.array(
            [[self.latency(src, (r, c)) for c in range(cols)]
             for r in range(rows)],
            dtype=np.int64,
        )

    def router_hops(self, src: Coord, dst: Coord) -> int:
        """Router-to-router hops a NoC-routed packet traverses.

        This is the *activity* a transfer induces on the secondary
        interconnect (one router traversal per hop), as opposed to its
        latency — queue wait is accounted separately as ``noc_wait_cycles``.
        Topologies without an explicit router structure count one backbone
        traversal per transfer.
        """
        return 0 if src == dst else 1

    @property
    def name(self) -> str:
        return type(self).__name__

    def _manhattan(self, src: Coord, dst: Coord) -> int:
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    def _grid_distances(self, src: Coord) -> tuple[np.ndarray, np.ndarray]:
        """|row - src_row| and |col - src_col| over the whole grid."""
        rows, cols = self.config.rows, self.config.cols
        dr = np.abs(np.arange(rows) - src[0])[:, None]
        dc = np.abs(np.arange(cols) - src[1])[None, :]
        return np.broadcast_to(dr, (rows, cols)), np.broadcast_to(dc, (rows, cols))


class MeshInterconnect(Interconnect):
    """Dense 2-D mesh: latency equals hop count (Manhattan distance)."""

    def latency(self, src: Coord, dst: Coord) -> int:
        if src == dst:
            return 0
        return self._manhattan(src, dst) * self.config.local_hop_latency

    def _compute_matrix(self, src: Coord) -> np.ndarray:
        dr, dc = self._grid_distances(src)
        return (dr + dc) * self.config.local_hop_latency


class RowSliceInterconnect(Interconnect):
    """Hierarchical row slices: single-cycle in-row, fixed cost across rows.

    Fig. 4 example 1: "a hierarchical interconnect of row slices allows
    point-to-point single-cycle latency between PEs in the same row and a
    fixed 3-cycle latency across rows".
    """

    def latency(self, src: Coord, dst: Coord) -> int:
        if src == dst:
            return 0
        if src[0] == dst[0]:
            return self.config.local_hop_latency
        return self.config.cross_row_latency

    def _compute_matrix(self, src: Coord) -> np.ndarray:
        rows, cols = self.config.rows, self.config.cols
        matrix = np.full((rows, cols), self.config.cross_row_latency,
                         dtype=np.int64)
        if 0 <= src[0] < rows:
            matrix[src[0], :] = self.config.local_hop_latency
            if 0 <= src[1] < cols:
                matrix[src[0], src[1]] = 0
        return matrix


class MeshNocInterconnect(Interconnect):
    """The evaluation backend: neighbor links plus a half-ring NoC.

    Local PE-to-PE links cost 1 cycle per hop but are only economical for
    short distances.  The NoC has a router at every ``noc_slice`` PEs along a
    row; a packet pays injection/ejection overhead plus one cycle per router
    hop along the half-ring (rows first, then columns — each lane operates
    like a bus because mapped dataflow is strictly feedforward, §5.2).
    A transfer takes whichever path is faster.
    """

    def latency(self, src: Coord, dst: Coord) -> int:
        if src == dst:
            return 0
        local = self._manhattan(src, dst) * self.config.local_hop_latency
        return min(local, self._noc_latency(src, dst))

    def _compute_matrix(self, src: Coord) -> np.ndarray:
        cfg = self.config
        dr, dc = self._grid_distances(src)
        local = (dr + dc) * cfg.local_hop_latency
        src_row, src_slice = self._router(src)
        slice_of = np.arange(cfg.cols) // cfg.noc_slice
        slice_hops = np.abs(slice_of - src_slice)[None, :]
        row_hops = np.abs(np.arange(cfg.rows) - src_row)[:, None]
        noc = (2 * cfg.noc_inject_latency
               + (slice_hops + row_hops) * cfg.noc_hop_latency)
        matrix = np.minimum(local, noc)
        if 0 <= src[0] < cfg.rows and 0 <= src[1] < cfg.cols:
            matrix[src[0], src[1]] = 0
        return matrix

    def router_hops(self, src: Coord, dst: Coord) -> int:
        if src == dst:
            return 0
        src_router, dst_router = self._router(src), self._router(dst)
        return (abs(src_router[1] - dst_router[1])
                + abs(src_router[0] - dst_router[0]))

    def _router(self, coord: Coord) -> tuple[int, int]:
        """(row, slice index) of the router serving a coordinate."""
        row, col = coord
        return row, max(0, col) // self.config.noc_slice

    def _noc_latency(self, src: Coord, dst: Coord) -> int:
        cfg = self.config
        src_router, dst_router = self._router(src), self._router(dst)
        # Half-ring: traverse slices within the row, then rows vertically.
        slice_hops = abs(src_router[1] - dst_router[1])
        row_hops = abs(src_router[0] - dst_router[0])
        return (cfg.noc_inject_latency
                + (slice_hops + row_hops) * cfg.noc_hop_latency
                + cfg.noc_inject_latency)


def build_interconnect(config: AcceleratorConfig) -> Interconnect:
    """Instantiate the latency model selected by ``config.interconnect``."""
    kinds = {
        InterconnectKind.MESH: MeshInterconnect,
        InterconnectKind.ROW_SLICE: RowSliceInterconnect,
        InterconnectKind.MESH_NOC: MeshNocInterconnect,
    }
    return kinds[config.interconnect](config)
