"""Interconnect latency models.

MESA "does not restrict the type of interconnect used in the backend as long
as it can model the point-to-point communication latency between two PEs"
(paper §3.3).  Each model here is exactly that: a function
``latency(src, dst) -> cycles``, the paper's hardware-implementable ``l(C)``.

Three topologies are provided, matching the paper's examples and evaluation
backend:

* :class:`MeshInterconnect` — latency = Manhattan distance (Fig. 2, Fig. 4
  example 2);
* :class:`RowSliceInterconnect` — 1 cycle within a row, a fixed cost across
  rows (Fig. 4 example 1);
* :class:`MeshNocInterconnect` — the evaluation backend (Fig. 9): direct
  neighbor links at 1 cycle/hop combined with a half-ring NoC with a router
  per 4-PE slice for distant traversals; a transfer uses whichever is faster.

Load/store entries sit at column ``-1`` of their row (a strip along the
array's edge, Fig. 5) and are reachable by both interconnects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .config import AcceleratorConfig, Coord, InterconnectKind

__all__ = [
    "Interconnect",
    "MeshInterconnect",
    "RowSliceInterconnect",
    "MeshNocInterconnect",
    "build_interconnect",
]


class Interconnect(ABC):
    """Point-to-point latency model for one backend topology."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    @abstractmethod
    def latency(self, src: Coord, dst: Coord) -> int:
        """Data-transfer latency in cycles from ``src`` to ``dst``."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def _manhattan(self, src: Coord, dst: Coord) -> int:
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


class MeshInterconnect(Interconnect):
    """Dense 2-D mesh: latency equals hop count (Manhattan distance)."""

    def latency(self, src: Coord, dst: Coord) -> int:
        if src == dst:
            return 0
        return self._manhattan(src, dst) * self.config.local_hop_latency


class RowSliceInterconnect(Interconnect):
    """Hierarchical row slices: single-cycle in-row, fixed cost across rows.

    Fig. 4 example 1: "a hierarchical interconnect of row slices allows
    point-to-point single-cycle latency between PEs in the same row and a
    fixed 3-cycle latency across rows".
    """

    def latency(self, src: Coord, dst: Coord) -> int:
        if src == dst:
            return 0
        if src[0] == dst[0]:
            return self.config.local_hop_latency
        return self.config.cross_row_latency


class MeshNocInterconnect(Interconnect):
    """The evaluation backend: neighbor links plus a half-ring NoC.

    Local PE-to-PE links cost 1 cycle per hop but are only economical for
    short distances.  The NoC has a router at every ``noc_slice`` PEs along a
    row; a packet pays injection/ejection overhead plus one cycle per router
    hop along the half-ring (rows first, then columns — each lane operates
    like a bus because mapped dataflow is strictly feedforward, §5.2).
    A transfer takes whichever path is faster.
    """

    def latency(self, src: Coord, dst: Coord) -> int:
        if src == dst:
            return 0
        local = self._manhattan(src, dst) * self.config.local_hop_latency
        return min(local, self._noc_latency(src, dst))

    def _router(self, coord: Coord) -> tuple[int, int]:
        """(row, slice index) of the router serving a coordinate."""
        row, col = coord
        return row, max(0, col) // self.config.noc_slice

    def _noc_latency(self, src: Coord, dst: Coord) -> int:
        cfg = self.config
        src_router, dst_router = self._router(src), self._router(dst)
        # Half-ring: traverse slices within the row, then rows vertically.
        slice_hops = abs(src_router[1] - dst_router[1])
        row_hops = abs(src_router[0] - dst_router[0])
        return (cfg.noc_inject_latency
                + (slice_hops + row_hops) * cfg.noc_hop_latency
                + cfg.noc_inject_latency)


def build_interconnect(config: AcceleratorConfig) -> Interconnect:
    """Instantiate the latency model selected by ``config.interconnect``."""
    kinds = {
        InterconnectKind.MESH: MeshInterconnect,
        InterconnectKind.ROW_SLICE: RowSliceInterconnect,
        InterconnectKind.MESH_NOC: MeshNocInterconnect,
    }
    return kinds[config.interconnect](config)
