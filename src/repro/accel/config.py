"""Spatial accelerator configuration.

Paper §5.2: "We mainly experiment with three backend configurations: MESA
with 128 PEs (M-128) arranged with grid dimension 16×8, of which half are
equipped with single-precision floating-point logic; MESA with 512 PEs
(M-512), arranged in a 64×8 grid and 64 PEs (M-64) with a 16×4 grid."

The accelerator is a 2-D grid of PEs with two interconnects (local
neighbor links and a half-ring NoC with a router per 4-PE *slice*), plus a
pool of load/store entries sharing a limited number of memory ports.
FP capability is laid out in 2×2 *FP slices* (Table 1 lists an "FP Slice
(2×2)" macro) tiled over half the array.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..isa import OpClass
from ..latency import DEFAULT_LATENCIES, LatencyTable

__all__ = ["Coord", "InterconnectKind", "AcceleratorConfig",
           "M_64", "M_128", "M_512", "mesa_config"]

#: A PE coordinate: (row, col).  Load/store entries sit at column -1.
Coord = tuple[int, int]


class InterconnectKind(enum.Enum):
    """Backend interconnect topologies supported by the latency model."""

    #: Pure 2-D mesh: transfer latency = Manhattan distance (Fig. 4, ex. 2).
    MESH = "mesh"
    #: Hierarchical row slices: 1 cycle in-row, fixed cross-row (Fig. 4, ex. 1).
    ROW_SLICE = "row_slice"
    #: The paper's evaluation backend: neighbor links + half-ring NoC (Fig. 9).
    MESH_NOC = "mesh_noc"


@dataclass(frozen=True)
class AcceleratorConfig:
    """Parameters of one spatial accelerator backend."""

    name: str = "M-128"
    rows: int = 16
    cols: int = 8
    #: Fraction of PEs with single-precision FP logic (in 2x2 slices).
    fp_fraction: float = 0.5
    interconnect: InterconnectKind = InterconnectKind.MESH_NOC
    #: Latency of one local neighbor hop.
    local_hop_latency: int = 1
    #: Fixed cross-row latency for the ROW_SLICE interconnect.
    cross_row_latency: int = 3
    #: NoC parameters: a router every `noc_slice` PEs along a row.
    noc_slice: int = 4
    noc_hop_latency: int = 1
    noc_inject_latency: int = 2
    #: Load/store entries and the memory ports they share.
    lsu_entries: int = 32
    memory_ports: int = 2
    #: Operation latencies of the PEs' functional units.
    latencies: LatencyTable = DEFAULT_LATENCIES
    frequency_ghz: float = 2.0
    #: Datapath width of the PEs: 32 (RV32IMF, the paper's evaluation
    #: backend) or 64.  RV64I-only instructions disqualify a loop on a
    #: 32-bit backend (condition C2).
    xlen: int = 32

    def __post_init__(self) -> None:
        if self.xlen not in (32, 64):
            raise ValueError(f"xlen must be 32 or 64, got {self.xlen}")
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid dimensions must be positive")
        if not 0.0 <= self.fp_fraction <= 1.0:
            raise ValueError("fp_fraction must be within [0, 1]")
        if self.lsu_entries < 1 or self.memory_ports < 1:
            raise ValueError("need at least one LSU entry and one port")
        if self.noc_slice < 1:
            raise ValueError("noc_slice must be positive")

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def max_instructions(self) -> int:
        """Condition C1's limit: instructions must fit PEs + LSU entries."""
        return self.num_pes + self.lsu_entries

    def supports_fp(self, coord: Coord) -> bool:
        """Whether the PE at ``coord`` has FP logic.

        FP capability is laid out as 2×2 slices tiled in a checkerboard over
        the grid, thinned to approximately ``fp_fraction`` of the array.
        """
        row, col = coord
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"coordinate {coord} outside {self.rows}x{self.cols}")
        if self.fp_fraction >= 1.0:
            return True
        if self.fp_fraction <= 0.0:
            return False
        # 2x2 FP slices in a checkerboard; a block is FP-capable when its
        # diagonal index falls inside the configured fraction.
        block_row, block_col = row // 2, col // 2
        period = max(2, round(2 / self.fp_fraction))
        return (block_row + block_col) % period < period * self.fp_fraction + 1e-9

    def supports(self, op_class: OpClass, coord: Coord) -> bool:
        """Whether the PE at ``coord`` can execute ``op_class`` (F_op)."""
        if op_class.is_memory:
            return False  # memory instructions live in LSU entries, not PEs
        if op_class is OpClass.SYSTEM:
            return False
        if op_class.is_fp:
            return self.supports_fp(coord)
        return True

    def with_grid(self, rows: int, cols: int, name: str | None = None) -> "AcceleratorConfig":
        """A copy with a different grid geometry (for PE-scaling sweeps)."""
        return replace(self, rows=rows, cols=cols,
                       name=name if name is not None else f"M-{rows * cols}")


#: The paper's three evaluation configurations.  Memory ports scale with
#: the array so that Fig. 15's saturation point (beyond 128 PEs for a fixed
#: memory system) is a property of the sweep, not of these presets.
M_64 = AcceleratorConfig(name="M-64", rows=16, cols=4, lsu_entries=16,
                         memory_ports=4)
M_128 = AcceleratorConfig(name="M-128", rows=16, cols=8, lsu_entries=32,
                          memory_ports=8)
M_512 = AcceleratorConfig(name="M-512", rows=64, cols=8, lsu_entries=64,
                          memory_ports=16)

_NAMED = {"M-64": M_64, "M-128": M_128, "M-512": M_512}


def mesa_config(name: str) -> AcceleratorConfig:
    """Look up one of the paper's named configurations (M-64/M-128/M-512)."""
    try:
        return _NAMED[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown configuration {name!r}; expected one of {sorted(_NAMED)}"
        ) from None
