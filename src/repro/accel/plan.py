"""Execution plans: the compiled form of a configured program.

Everything the :class:`~repro.accel.engine.DataflowEngine` needs to know
about a node or edge is frozen at configuration time — the paper's T3 step
writes the fabric's *static* configuration, and the only quantities that vary
from iteration to iteration are memory behaviour (AMAT, port grants,
store-to-load forwarding) and NoC ring-channel queueing ("sending via the
on-chip network takes longer depending on traffic and distance", §5.2).

An :class:`ExecutionPlan` exploits that split.  It is compiled once per
(program, interconnect) pair and precomputes, per node:

* the operation's evaluator (a closure from
  :func:`repro.isa.compile_operation` / :func:`~repro.isa.compile_branch`),
  its constant latency, and its operand resolution codes;
* for memory nodes, the decoded access descriptor (size, signedness,
  float/int format, immediate, raw<->value converters);

and per DFG or loop-carried edge:

* the static transfer latency ``l(C)`` and the local-links-vs-NoC routing
  decision (whichever is faster wins, exactly as the cycle model decides it);
* the number of NoC router hops the packet traverses (the activity the
  transfer induces on the secondary interconnect).

Only the NoC queue wait and memory behaviour remain dynamic.  The engine's
plan-driven iteration loop produces *bit-identical* results to the
node-by-node interpreter — the golden equivalence tests in
``tests/accel/test_plan_equivalence.py`` hold both paths to that contract.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from ..isa import ExecutionError, Opcode, compile_branch, compile_operation
from .config import AcceleratorConfig
from .interconnect import Interconnect
from .program import (
    AcceleratorProgram,
    ConfiguredNode,
    Operand,
    OperandKind,
)

__all__ = [
    "K_CONST", "K_LOOP", "K_NODE",
    "N_COMPUTE", "N_MEMORY", "N_CONTROL",
    "EdgePlan", "OperandPlan", "MemoryPlan", "NodePlan", "ExecutionPlan",
    "compile_plan",
]

# Operand resolution codes.  REGISTER and NONE operands collapse into one
# code: both are constant for the whole run (a latched live-in or zero) and
# arrive at iteration start.
K_CONST = 0
K_LOOP = 1   # previous-iteration producer; constant on iteration 0
K_NODE = 2   # same-iteration DFG edge

# Node execution codes.
N_COMPUTE = 0
N_MEMORY = 1
N_CONTROL = 2  # branch or jump

_LOAD_FORMATS = {
    Opcode.LB: (1, True), Opcode.LBU: (1, False),
    Opcode.LH: (2, True), Opcode.LHU: (2, False),
    Opcode.LW: (4, True), Opcode.FLW: (4, False),
    Opcode.LWU: (4, False), Opcode.LD: (8, True),
}
_STORE_SIZES = {Opcode.SB: 1, Opcode.SH: 2, Opcode.SW: 4, Opcode.FSW: 4,
                Opcode.SD: 8}


@dataclass(frozen=True, slots=True)
class EdgePlan:
    """One DFG or loop-carried edge with its routing decision frozen."""

    src_id: int
    dst_id: int
    #: Static transfer latency ``l(C)`` — the full cost for local routes,
    #: the unloaded cost for NoC routes (queue wait is added dynamically).
    cycles: float
    #: True when the neighbor links are at least as fast as the NoC, i.e.
    #: the packet never touches a ring channel.
    is_local: bool
    #: Manhattan distance (local-link traversals when ``is_local``).
    manhattan: int
    #: Source row — selects the ring channel for NoC-routed packets.
    src_row: int
    #: Router-to-router hops for NoC-routed packets (activity, not latency).
    router_hops: int
    #: ``(src_id, dst_id)`` — the latency-counter key.
    key: tuple[int, int]
    #: Index into ``ExecutionPlan.edge_slots`` — one slot per operand
    #: occurrence, so per-event accounting can use flat arrays instead of
    #: dicts (several slots may share a ``key`` when a node consumes the
    #: same producer twice).
    slot: int


@dataclass(frozen=True, slots=True)
class OperandPlan:
    """Resolution recipe for one operand."""

    kind: int                     # K_CONST / K_LOOP / K_NODE
    src_id: int = -1              # producing node for K_LOOP / K_NODE
    register: object = None       # live-in register for K_CONST / K_LOOP
    edge: EdgePlan | None = None  # transfer for K_LOOP / K_NODE


@dataclass(frozen=True, slots=True)
class MemoryPlan:
    """Decoded access descriptor of a load/store entry."""

    is_load: bool
    size: int
    imm: int
    pc: int
    vector_group: int | None
    prefetched: bool
    #: raw bits -> architectural value (loads): FP reinterpret, sign-extend,
    #: or identity.
    from_raw: Callable
    #: architectural value -> raw bits (stores).
    to_raw: Callable


@dataclass(frozen=True, slots=True)
class NodePlan:
    """One configured node with every static decision precomputed."""

    node_id: int
    kind: int                    # N_COMPUTE / N_MEMORY / N_CONTROL
    src1: OperandPlan
    src2: OperandPlan
    guard_branch: int            # guarding branch node id, -1 if unguarded
    #: ``guard_branch`` when the guard can actually fire (a branch strictly
    #: before this node), else -1 — a guard at or after its node reads the
    #: iteration's still-default branch state and never predicates it off.
    #: Both drive loops and the batched capability analysis share this rule.
    effective_guard: int
    fallback: OperandPlan | None
    #: Constant operation latency (0 for memory nodes, whose timing is
    #: port grant + AMAT).
    latency: int
    #: ``(a, b) -> value`` for compute, ``(a, b) -> taken`` for control.
    evaluate: Callable | None
    is_fp: bool
    is_store: bool
    memory: MemoryPlan | None
    is_loop_branch: bool


def _identity(raw):
    return raw


def _make_raiser(instr) -> Callable:
    def raise_(a, b):
        from ..isa.semantics import apply_operation
        return apply_operation(instr, a, b)  # raises ExecutionError
    return raise_


def _make_from_raw(opcode: Opcode, size: int, signed: bool) -> Callable:
    if opcode is Opcode.FLW:
        def from_raw(raw):
            return struct.unpack("<f", raw.to_bytes(4, "little"))[0]
        return from_raw
    if signed:
        sign = 1 << (size * 8 - 1)
        low = sign - 1
        def from_raw(raw):
            return (raw & low) - (raw & sign)
        return from_raw
    return _identity


def _make_to_raw(opcode: Opcode, size: int) -> Callable:
    if opcode is Opcode.FSW:
        def to_raw(data):
            return int.from_bytes(struct.pack("<f", float(data)), "little")
        return to_raw
    mask = (1 << (size * 8)) - 1
    def to_raw(data):
        return int(data) & mask
    return to_raw


class ExecutionPlan:
    """The compiled form of one (program, interconnect) pair."""

    __slots__ = (
        "program", "config", "interconnect", "nodes", "n_nodes",
        "loop_branch_id", "has_memory", "xlen_mask", "store_issue",
        "memory_per_iter", "occupancy_entries", "edge_slots",
        "_recurrence_cache", "_batch",
    )

    def __init__(self, program: AcceleratorProgram,
                 interconnect: Interconnect) -> None:
        self.program = program
        self.config: AcceleratorConfig = program.config
        self.interconnect = interconnect
        #: Every EdgePlan in compile order — one slot per operand occurrence.
        #: Both drive loops account edge events into flat arrays indexed by
        #: ``EdgePlan.slot`` and fold into the keyed counters once per run.
        self.edge_slots: list[EdgePlan] = []
        self.nodes: list[NodePlan] = [
            self._compile_node(node) for node in program.nodes
        ]
        self.n_nodes = len(self.nodes)
        self.loop_branch_id = program.loop_branch_id
        self.has_memory = any(n.kind == N_MEMORY for n in self.nodes)
        self.xlen_mask = (1 << self.config.xlen) - 1
        self.store_issue = self.config.latencies.store_issue
        # Port requests per iteration: every store and ungrouped load is one
        # request; a vector group of loads shares a single grant.
        groups: set[int] = set()
        self.memory_per_iter = 0
        #: (is_store, vector_group, prefetched, pc) per memory node — the
        #: static inputs of the LSU-occupancy bound in ``_total_cycles``.
        self.occupancy_entries: list[tuple[bool, int | None, bool, int]] = []
        for node in program.memory_nodes:
            instr = node.instruction
            if instr.is_load and node.vector_group is not None:
                groups.add(node.vector_group)
            else:
                self.memory_per_iter += 1
            self.occupancy_entries.append(
                (instr.is_store, node.vector_group, node.prefetched,
                 instr.address))
        self.memory_per_iter += len(groups)
        #: Recurrence-bound II per memory ideal latency (the one dynamic
        #: input of the RecMII computation).
        self._recurrence_cache: dict[float, float] = {}
        #: Lazily compiled batched program (``accel.batch``).
        self._batch = None

    # -- batched execution ---------------------------------------------------

    @property
    def batch_program(self):
        """The batched compilation of this plan (lazy, cached).

        Always returns a :class:`repro.accel.batch.BatchProgram`; when the
        plan cannot be vectorized its ``capability`` carries the reason and
        the engine stays on the scalar compiled loop.
        """
        if self._batch is None:
            from .batch import compile_batch
            self._batch = compile_batch(self)
        return self._batch

    @property
    def batchable(self):
        """Capability verdict of the batched executor for this plan."""
        return self.batch_program.capability

    # -- compilation ---------------------------------------------------------

    def _compile_node(self, node: ConfiguredNode) -> NodePlan:
        instr = node.instruction
        src1 = self._compile_operand(node, node.src1)
        src2 = self._compile_operand(node, node.src2)
        guard_branch = -1
        fallback = None
        if node.guard is not None:
            guard_branch = node.guard.branch_node_id
            fallback = self._compile_operand(node, node.guard.fallback)

        memory: MemoryPlan | None = None
        evaluate: Callable | None = None
        latency = 0
        if node.is_memory:
            kind = N_MEMORY
            if instr.is_load:
                size, signed = _LOAD_FORMATS[instr.opcode]
            else:
                size, signed = _STORE_SIZES[instr.opcode], False
            memory = MemoryPlan(
                is_load=instr.is_load,
                size=size,
                imm=instr.imm,
                pc=instr.address,
                vector_group=node.vector_group,
                prefetched=node.prefetched,
                from_raw=_make_from_raw(instr.opcode, size, signed),
                to_raw=_make_to_raw(instr.opcode, size),
            )
        elif instr.is_control:
            kind = N_CONTROL
            evaluate = compile_branch(instr)
            latency = self.config.latencies.for_instruction(instr)
        else:
            kind = N_COMPUTE
            try:
                evaluate = compile_operation(instr, xlen=self.config.xlen)
                latency = self.config.latencies.for_instruction(instr)
            except (ExecutionError, KeyError):
                # Not executable on the fabric (e.g. a system op).  Mirror
                # the interpreter: the error surfaces when the node runs,
                # not when the plan is compiled.
                evaluate = _make_raiser(instr)
                latency = 1

        return NodePlan(
            node_id=node.node_id,
            kind=kind,
            src1=src1,
            src2=src2,
            guard_branch=guard_branch,
            effective_guard=(guard_branch
                             if -1 < guard_branch < node.node_id else -1),
            fallback=fallback,
            latency=latency,
            evaluate=evaluate,
            is_fp=instr.is_fp,
            is_store=instr.is_store,
            memory=memory,
            is_loop_branch=(node.node_id == self.program.loop_branch_id),
        )

    def _compile_operand(self, dst: ConfiguredNode,
                         operand: Operand) -> OperandPlan:
        kind = operand.kind
        if kind is OperandKind.NONE:
            return OperandPlan(K_CONST)
        if kind is OperandKind.REGISTER:
            return OperandPlan(K_CONST, register=operand.register)
        edge = self._compile_edge(operand.node_id, dst)
        if kind is OperandKind.LOOP_CARRIED:
            return OperandPlan(K_LOOP, src_id=operand.node_id,
                               register=operand.register, edge=edge)
        return OperandPlan(K_NODE, src_id=operand.node_id, edge=edge)

    def _compile_edge(self, src_id: int, dst: ConfiguredNode) -> EdgePlan:
        src = self.program.node(src_id)
        cycles = float(self.interconnect.latency(src.coord, dst.coord))
        manhattan = (abs(src.coord[0] - dst.coord[0])
                     + abs(src.coord[1] - dst.coord[1]))
        # The same faster-path-wins decision the cycle model makes: the
        # packet takes the neighbor links unless the NoC strictly beats them.
        is_local = manhattan * self.config.local_hop_latency <= cycles
        edge = EdgePlan(
            src_id=src_id,
            dst_id=dst.node_id,
            cycles=cycles,
            is_local=is_local,
            manhattan=manhattan,
            src_row=src.coord[0],
            router_hops=self.interconnect.router_hops(src.coord, dst.coord),
            key=(src_id, dst.node_id),
            slot=len(self.edge_slots),
        )
        self.edge_slots.append(edge)
        return edge

    # -- per-run constants ---------------------------------------------------

    def bind_constants(self, reg_env: dict) -> tuple[list, list, list]:
        """Per-node constant operand values for one run.

        ``K_CONST`` operands (latched live-ins or zero) keep these values for
        the whole run; ``K_LOOP`` operands take them on iteration 0 only.
        Returns ``(const1, const2, const_fb)`` indexed by node id.
        """
        get = reg_env.get

        def const(op: OperandPlan | None):
            if op is None or op.register is None:
                return 0
            return get(op.register, 0)

        const1 = [const(n.src1) for n in self.nodes]
        const2 = [const(n.src2) for n in self.nodes]
        const_fb = [const(n.fallback) for n in self.nodes]
        return const1, const2, const_fb

    # -- recurrence bound ----------------------------------------------------

    def recurrence_ii(self, ideal_memory_latency: float) -> float:
        """Loop-carried recurrence bound on the initiation interval.

        For each loop-carried edge (u -> v, distance 1), the cycle through
        the intra-iteration longest path from v to u plus the transfer
        latency constrains II (standard modulo-scheduling RecMII with all
        dependence distances equal to 1).  Cached per plan — the DFG and
        transfer latencies are frozen; only the memory model's ideal latency
        is an outside input.
        """
        cached = self._recurrence_cache.get(ideal_memory_latency)
        if cached is None:
            cached = self._compute_recurrence(ideal_memory_latency)
            self._recurrence_cache[ideal_memory_latency] = cached
        return cached

    def _compute_recurrence(self, ideal_memory_latency: float) -> float:
        op_latency = [
            float(ideal_memory_latency) if n.kind == N_MEMORY
            else float(n.latency)
            for n in self.nodes
        ]
        best = 1.0
        for node in self.nodes:
            for operand in (node.src1, node.src2):
                if operand.kind != K_LOOP:
                    continue
                path = self._longest_path(node.node_id, operand.src_id,
                                          op_latency)
                if path is not None:
                    best = max(best, path + operand.edge.cycles)
        return best

    def _longest_path(self, src: int, dst: int,
                      op_latency: list[float]) -> float | None:
        """Longest same-iteration path latency from node src to node dst
        (inclusive of both ops), or None if unreachable."""
        if src > dst:
            return None
        # DP over program order: dist[n] = longest arrival at n's output.
        dist: dict[int, float] = {src: op_latency[src]}
        for node in self.nodes[src + 1:dst + 1]:
            best: float | None = None
            for operand in (node.src1, node.src2):
                if operand.kind == K_NODE and operand.src_id in dist:
                    arrival = dist[operand.src_id] + operand.edge.cycles
                    best = arrival if best is None else max(best, arrival)
            if best is not None:
                dist[node.node_id] = best + op_latency[node.node_id]
        return dist.get(dst)


def compile_plan(program: AcceleratorProgram,
                 interconnect: Interconnect) -> ExecutionPlan:
    """Compile (and memoize) the execution plan for a program.

    Plans are cached on the program keyed by the interconnect's *value*
    (type + config): two interconnects of the same topology and
    configuration produce identical latency models, so engines built over
    the same program share one plan.
    """
    key = (type(interconnect), interconnect.config)
    cache = program.plan_cache
    plan = cache.get(key)
    if plan is None:
        plan = ExecutionPlan(program, interconnect)
        cache[key] = plan
    return plan
