"""The accelerator-side program representation.

An :class:`AcceleratorProgram` is what MESA's configuration step (T3)
ultimately writes into the fabric: one :class:`ConfiguredNode` per loop-body
instruction, carrying its PE or LSU placement, where each operand comes from,
its predication guard, and the live-out register map.  The dataflow engine
executes this structure directly, and the bitstream codec serializes it.

Operand kinds capture the paper's dataflow model:

* ``NODE`` — output of an earlier node in the same iteration (a DFG edge);
* ``LOOP_CARRIED`` — output of a node from the *previous* iteration (an
  induction/recurrence value); on the first iteration the value comes from
  the architectural register transferred at offload;
* ``REGISTER`` — a loop-invariant live-in register, latched at configuration;
* ``NONE`` — no second operand (immediates are part of the instruction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..isa import Instruction, OpClass, Register
from .config import AcceleratorConfig, Coord

__all__ = ["OperandKind", "Operand", "Guard", "ConfiguredNode",
           "AcceleratorProgram"]


class OperandKind(enum.Enum):
    NODE = "node"
    LOOP_CARRIED = "loop_carried"
    REGISTER = "register"
    NONE = "none"


@dataclass(frozen=True)
class Operand:
    """One input of a configured node."""

    kind: OperandKind
    node_id: int | None = None
    register: Register | None = None

    def __post_init__(self) -> None:
        if self.kind is OperandKind.NODE and self.node_id is None:
            raise ValueError("NODE operand needs a node_id")
        if self.kind is OperandKind.LOOP_CARRIED and (
                self.node_id is None or self.register is None):
            raise ValueError("LOOP_CARRIED operand needs node_id and register")
        if self.kind is OperandKind.REGISTER and self.register is None:
            raise ValueError("REGISTER operand needs a register")

    @classmethod
    def node(cls, node_id: int) -> "Operand":
        return cls(OperandKind.NODE, node_id=node_id)

    @classmethod
    def loop_carried(cls, node_id: int, register: Register) -> "Operand":
        return cls(OperandKind.LOOP_CARRIED, node_id=node_id, register=register)

    @classmethod
    def from_register(cls, register: Register) -> "Operand":
        return cls(OperandKind.REGISTER, register=register)

    @classmethod
    def none(cls) -> "Operand":
        return cls(OperandKind.NONE)


@dataclass(frozen=True)
class Guard:
    """Predication: this node is disabled when a forward branch is taken.

    Paper §5: "instructions under a branch region carry a hidden dependency
    on the previous instruction producing its destination register ...
    disabled PEs must still forward the old register's value".
    """

    branch_node_id: int
    #: Value the node's output takes when disabled (the "old" register value).
    fallback: Operand


@dataclass(frozen=True)
class ConfiguredNode:
    """One loop-body instruction as configured on the fabric."""

    node_id: int
    instruction: Instruction
    coord: Coord
    src1: Operand = field(default_factory=Operand.none)
    src2: Operand = field(default_factory=Operand.none)
    guard: Guard | None = None
    #: True when placed in a load/store entry rather than a PE.
    is_memory: bool = False
    #: Vectorization group: loads in a group share one memory-port grant.
    vector_group: int | None = None
    #: Prefetched load: miss latency is hidden after the first iteration.
    prefetched: bool = False

    @property
    def op_class(self) -> OpClass:
        return self.instruction.op_class

    def operands(self) -> tuple[Operand, Operand]:
        return (self.src1, self.src2)


@dataclass
class AcceleratorProgram:
    """A fully configured loop region ready to execute on the fabric."""

    config: AcceleratorConfig
    nodes: list[ConfiguredNode]
    #: Node id of the backward loop-closing branch (None = single pass).
    loop_branch_id: int | None
    #: Architectural registers written by the loop: register -> producing node.
    live_out: dict[Register, int] = field(default_factory=dict)
    #: Registers read before written (must be transferred at offload).
    live_in: set[Register] = field(default_factory=set)
    #: Compiled execution plans keyed by interconnect value — see
    #: :func:`repro.accel.plan.compile_plan`.  Excluded from comparison and
    #: repr: it is derived state, not part of the configuration.
    plan_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        for index, node in enumerate(self.nodes):
            if node.node_id != index:
                raise ValueError(
                    f"node ids must be dense program order; got {node.node_id} "
                    f"at index {index}"
                )
        if self.loop_branch_id is not None and not (
                0 <= self.loop_branch_id < len(self.nodes)):
            raise ValueError("loop_branch_id out of range")

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def memory_nodes(self) -> list[ConfiguredNode]:
        return [n for n in self.nodes if n.is_memory]

    @property
    def compute_nodes(self) -> list[ConfiguredNode]:
        return [n for n in self.nodes if not n.is_memory]

    def node(self, node_id: int) -> ConfiguredNode:
        return self.nodes[node_id]

    def validate_placement(self) -> None:
        """Check structural invariants of the mapping.

        Raises:
            ValueError: two nodes share a PE, a memory node is not at an LSU
                coordinate, or an operand references a later node.
        """
        seen: dict[Coord, int] = {}
        for node in self.nodes:
            if node.coord in seen and not node.is_memory:
                raise ValueError(
                    f"nodes {seen[node.coord]} and {node.node_id} share PE "
                    f"{node.coord}"
                )
            if not node.is_memory:
                seen[node.coord] = node.node_id
                row, col = node.coord
                if not (0 <= row < self.config.rows and 0 <= col < self.config.cols):
                    raise ValueError(f"node {node.node_id} at {node.coord} "
                                     "is outside the grid")
            elif node.coord[1] != -1:
                raise ValueError(f"memory node {node.node_id} must sit at an "
                                 f"LSU coordinate (col -1), got {node.coord}")
            for operand in node.operands():
                if (operand.kind is OperandKind.NODE
                        and operand.node_id >= node.node_id):
                    raise ValueError(
                        f"node {node.node_id} reads same-iteration output of "
                        f"later node {operand.node_id}"
                    )
