"""The PE array: capability masks and occupancy tracking.

This module realizes the matrices of paper §3.3:

* ``F`` — the placement matrix (instruction assigned per PE);
* ``F_free`` — the binary availability matrix ("the two-dimensional analog to
  the register free list for renaming in out-of-order processors");
* ``F_op`` — one constant binary mask per operation class indicating which
  PEs support it ("predetermined based on the specifications of the hardware
  backend").

Masks are NumPy boolean arrays so the mapper can combine them with
element-wise AND exactly as the paper's hardware does.
"""

from __future__ import annotations

import numpy as np

from ..isa import OpClass
from .config import AcceleratorConfig, Coord

__all__ = ["PEGrid"]


class PEGrid:
    """Occupancy and capability state of one accelerator's PE array."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        #: F: node id occupying each PE, or -1 for a nop (the "zero matrix").
        self.placement = np.full((config.rows, config.cols), -1, dtype=np.int64)
        #: F_free: True where a PE is unoccupied.
        self.free = np.ones((config.rows, config.cols), dtype=bool)
        self._op_masks: dict[OpClass, np.ndarray] = {}

    @property
    def shape(self) -> tuple[int, int]:
        return (self.config.rows, self.config.cols)

    def op_mask(self, op_class: OpClass) -> np.ndarray:
        """F_op for one operation class (cached constant mask)."""
        mask = self._op_masks.get(op_class)
        if mask is None:
            rows, cols = self.shape
            mask = np.array(
                [[self.config.supports(op_class, (r, c)) for c in range(cols)]
                 for r in range(rows)],
                dtype=bool,
            )
            mask.setflags(write=False)
            self._op_masks[op_class] = mask
        return mask

    def available_mask(self, op_class: OpClass) -> np.ndarray:
        """``F_free AND F_op``: PEs that can accept ``op_class`` right now."""
        return self.free & self.op_mask(op_class)

    def occupy(self, coord: Coord, node_id: int) -> None:
        """Place a node at a PE.

        Raises:
            ValueError: if the PE is already occupied.
            IndexError: if the coordinate is outside the grid.
        """
        row, col = coord
        if not (0 <= row < self.config.rows and 0 <= col < self.config.cols):
            raise IndexError(f"coordinate {coord} outside {self.shape}")
        if not self.free[row, col]:
            raise ValueError(f"PE {coord} already occupied by node "
                             f"{self.placement[row, col]}")
        self.placement[row, col] = node_id
        self.free[row, col] = False

    def release(self, coord: Coord) -> None:
        """Free a PE (used when re-mapping between optimization rounds)."""
        row, col = coord
        self.placement[row, col] = -1
        self.free[row, col] = True

    def occupant(self, coord: Coord) -> int | None:
        """Node id at a coordinate, or None if free."""
        value = int(self.placement[coord[0], coord[1]])
        return None if value == -1 else value

    def clear(self) -> None:
        """Reset to the all-nop state."""
        self.placement.fill(-1)
        self.free.fill(True)

    @property
    def occupied_count(self) -> int:
        return int((~self.free).sum())

    def free_neighbourhood(self, coord: Coord, radius: int = 1) -> int:
        """Number of free PEs within a Chebyshev radius (the paper's
        tie-breaker: "prioritize positions with more free entries in its
        local neighborhood")."""
        row, col = coord
        r0, r1 = max(0, row - radius), min(self.config.rows, row + radius + 1)
        c0, c1 = max(0, col - radius), min(self.config.cols, col + radius + 1)
        window = self.free[r0:r1, c0:c1]
        return int(window.sum()) - int(self.free[row, col])

    def free_neighbourhood_matrix(self, radius: int = 1) -> np.ndarray:
        """:meth:`free_neighbourhood` for every PE at once.

        Computed with a summed-area table over ``F_free`` so the mapper can
        tie-break a whole candidate matrix in one shot; entry ``[r, c]``
        equals ``free_neighbourhood((r, c), radius)`` exactly.
        """
        rows, cols = self.shape
        free = self.free.astype(np.int64)
        integral = np.zeros((rows + 1, cols + 1), dtype=np.int64)
        np.cumsum(np.cumsum(free, axis=0), axis=1, out=integral[1:, 1:])
        r = np.arange(rows)
        c = np.arange(cols)
        r0 = np.maximum(0, r - radius)
        r1 = np.minimum(rows, r + radius + 1)
        c0 = np.maximum(0, c - radius)
        c1 = np.minimum(cols, c + radius + 1)
        window = (integral[np.ix_(r1, c1)] - integral[np.ix_(r0, c1)]
                  - integral[np.ix_(r1, c0)] + integral[np.ix_(r0, c0)])
        return window - free
