"""Operation latency table shared by the CPU, accelerator, and DFG models.

Paper §3.1: "operation latencies L_i.op are generally stored as constants for
immediate operations (add, mul, etc.) ... Memory access operations are modeled
by per-instruction average memory access time (AMAT)".  This module is that
constant store.  Memory operations deliberately have *no* entry here — their
latency always comes from measured AMAT (see
:class:`repro.mem.hierarchy.MemoryHierarchy`).

The defaults follow the paper's worked example (Fig. 2: FP add/sub = 3 cycles,
FP mul = 5 cycles) and common RISC-V FU pipelines for the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar

from .isa import Instruction, OpClass

__all__ = ["LatencyTable", "DEFAULT_LATENCIES"]


@dataclass(frozen=True)
class LatencyTable:
    """Cycles from operands-ready to result-produced, per operation class."""

    int_alu: int = 1
    int_mul: int = 3
    int_div: int = 12
    fp_add: int = 3
    fp_mul: int = 5
    fp_div: int = 16
    fp_sqrt: int = 20
    fp_cmp: int = 2
    fp_cvt: int = 2
    branch: int = 1
    jump: int = 1
    store_issue: int = 1  # address/data hand-off; the access itself is AMAT

    _BY_CLASS: ClassVar[dict[OpClass, str]] = {
        OpClass.INT_ALU: "int_alu",
        OpClass.INT_MUL: "int_mul",
        OpClass.INT_DIV: "int_div",
        OpClass.FP_ADD: "fp_add",
        OpClass.FP_MUL: "fp_mul",
        OpClass.FP_DIV: "fp_div",
        OpClass.FP_SQRT: "fp_sqrt",
        OpClass.FP_CMP: "fp_cmp",
        OpClass.FP_CVT: "fp_cvt",
        OpClass.BRANCH: "branch",
        OpClass.JUMP: "jump",
    }

    def __post_init__(self) -> None:
        # Materialize the class -> cycles map once; ``for_class`` sits on the
        # per-dynamic-instruction path of every timing model.
        object.__setattr__(self, "_by_class_value", {
            op_class: getattr(self, name)
            for op_class, name in self._BY_CLASS.items()
        })

    def for_class(self, op_class: OpClass) -> int:
        """Latency of a non-memory operation class.

        Raises:
            KeyError: for memory/system classes, whose latency is not a
                constant (memory uses AMAT; system ops are not executable).
        """
        cycles = self._by_class_value.get(op_class)
        if cycles is None:
            raise KeyError(f"{op_class} has no constant latency")
        return cycles

    def for_instruction(self, instr: Instruction) -> int:
        """Latency of a non-memory instruction."""
        return self.for_class(instr.op_class)

    def scaled(self, factor: float) -> "LatencyTable":
        """A copy with all latencies scaled (min 1 cycle each)."""
        updates = {
            name: max(1, round(getattr(self, name) * factor))
            for name in (
                "int_alu", "int_mul", "int_div", "fp_add", "fp_mul",
                "fp_div", "fp_sqrt", "fp_cmp", "fp_cvt", "branch", "jump",
                "store_issue",
            )
        }
        return replace(self, **updates)


#: The library-wide default latency table.
DEFAULT_LATENCIES = LatencyTable()
