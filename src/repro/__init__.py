"""MESA: Microarchitecture Extensions for Spatial Architecture Generation.

A production-quality Python reproduction of the ISCA 2023 paper.  MESA is a
hardware controller that monitors CPU threads, translates hot loops into
latency-weighted dataflow graphs, maps them onto a reconfigurable spatial
accelerator, and iteratively re-optimizes the configuration using runtime
performance counters.

Quick start::

    from repro import MesaController, M_128, assemble
    from repro.isa import MachineState

    program = assemble('''
        addi t0, zero, 200
        loop:
            lw   t1, 0(a0)
            addi t1, t1, 1
            sw   t1, 0(a0)
            addi a0, a0, 4
            addi t0, t0, -1
            bne  t0, zero, loop
    ''')
    controller = MesaController(M_128)
    result = controller.execute(program, state_factory=make_state)
    print(result.speedup_vs_single_core)

Sub-packages: :mod:`repro.isa` (RISC-V substrate), :mod:`repro.mem` (memory
system), :mod:`repro.cpu` (out-of-order CPU baseline), :mod:`repro.accel`
(the spatial accelerator), :mod:`repro.core` (MESA itself),
:mod:`repro.power` (area/power/energy models), :mod:`repro.baselines`
(OpenCGRA- and DynaSpAM-style comparators), :mod:`repro.workloads` (the
Rodinia kernel suite), and :mod:`repro.harness` (experiment drivers).
"""

from .accel import (
    AcceleratorConfig,
    DataflowEngine,
    ExecutionOptions,
    M_128,
    M_512,
    M_64,
    mesa_config,
)
from .core import (
    DataflowGraph,
    InstructionMapper,
    MesaController,
    MesaOptions,
    MesaResult,
    build_ldfg,
)
from .cpu import CpuConfig, MulticoreCpu, OutOfOrderCore, collect_trace
from .isa import Program, assemble
from .latency import DEFAULT_LATENCIES, LatencyTable

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "DataflowEngine",
    "ExecutionOptions",
    "M_64",
    "M_128",
    "M_512",
    "mesa_config",
    "DataflowGraph",
    "InstructionMapper",
    "MesaController",
    "MesaOptions",
    "MesaResult",
    "build_ldfg",
    "CpuConfig",
    "MulticoreCpu",
    "OutOfOrderCore",
    "collect_trace",
    "Program",
    "assemble",
    "DEFAULT_LATENCIES",
    "LatencyTable",
    "__version__",
]
