"""RISC-V register model: integer and floating-point register files.

MESA renames *architectural* registers to *instruction addresses* when it
builds the logical dataflow graph (paper §3.2), so the library needs a precise
notion of an architectural register identity.  A register is represented by a
:class:`Register` value object that records its file (``x`` or ``f``) and
index; ABI aliases (``a0``, ``t1``, ``fs2``, ...) are accepted everywhere a
register name is parsed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "RegFile",
    "Register",
    "INT_ABI_NAMES",
    "FP_ABI_NAMES",
    "parse_register",
    "x",
    "f",
    "ZERO",
]


class RegFile(Enum):
    """Which architectural register file a register belongs to."""

    INT = "x"
    FP = "f"

    # Members are singletons; identity hashing keeps register-keyed dicts
    # (rename tables, scoreboards) off the slower enum hash path.
    __hash__ = object.__hash__


#: ABI names for the 32 integer registers, indexed by register number.
INT_ABI_NAMES: tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

#: ABI names for the 32 floating-point registers, indexed by register number.
FP_ABI_NAMES: tuple[str, ...] = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)

_INT_BY_NAME = {name: i for i, name in enumerate(INT_ABI_NAMES)}
_FP_BY_NAME = {name: i for i, name in enumerate(FP_ABI_NAMES)}
# ``fp`` is the conventional alias for ``s0``/``x8``.
_INT_BY_NAME["fp"] = 8


@dataclass(frozen=True)
class Register:
    """An architectural register: a (file, index) pair.

    Instances are immutable and hashable so they can key rename tables.
    """

    file: RegFile
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < 32:
            raise ValueError(f"register index out of range: {self.index}")

    def __hash__(self) -> int:
        # Stable, collision-free over the 64 architectural registers, and
        # cheaper than the generated field-tuple hash — registers key the
        # hottest dicts in the CPU and engine models.
        return self.index + (32 if self.file is RegFile.FP else 0)

    @property
    def is_zero(self) -> bool:
        """True for ``x0``, which always reads zero and ignores writes."""
        return self.file is RegFile.INT and self.index == 0

    @property
    def abi_name(self) -> str:
        """The conventional ABI name (``a0``, ``ft3``, ...)."""
        names = INT_ABI_NAMES if self.file is RegFile.INT else FP_ABI_NAMES
        return names[self.index]

    def __str__(self) -> str:
        return self.abi_name

    def __repr__(self) -> str:
        return f"Register({self.file.value}{self.index}={self.abi_name})"


def x(index: int) -> Register:
    """Build an integer register ``x<index>``."""
    return Register(RegFile.INT, index)


def f(index: int) -> Register:
    """Build a floating-point register ``f<index>``."""
    return Register(RegFile.FP, index)


#: The hard-wired zero register ``x0``.
ZERO = x(0)


def parse_register(name: str) -> Register:
    """Parse a register name in either raw (``x5``/``f12``) or ABI form.

    Raises:
        ValueError: if the name does not denote a RISC-V register.
    """
    name = name.strip().lower()
    if name in _INT_BY_NAME:
        return x(_INT_BY_NAME[name])
    if name in _FP_BY_NAME:
        return f(_FP_BY_NAME[name])
    if len(name) >= 2 and name[0] in "xf" and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < 32:
            return x(index) if name[0] == "x" else f(index)
    raise ValueError(f"not a RISC-V register: {name!r}")
