"""A small RISC-V assembler for the supported RV32IMF subset.

Workload kernels in :mod:`repro.workloads` are written as assembly text; this
module turns that text into :class:`~repro.isa.instructions.Instruction`
sequences with resolved addresses and branch offsets, the same form the MESA
frontend would observe coming out of the fetch/decode stages.

Supported syntax::

    # comment,  // comment,  ; comment
    loop:                       # labels
        flw   fa0, 0(a0)        # loads:  op rd, imm(rs1)
        fsub.s fa1, fa0, fs0    # R-type: op rd, rs1, rs2
        addi  a0, a0, 4         # I-type: op rd, rs1, imm
        sw    t0, -8(sp)        # stores: op rs2, imm(rs1)
        bne   t1, zero, loop    # branches: op rs1, rs2, label|imm

plus the common pseudo-instructions ``nop``, ``mv``, ``li``, ``j``, ``ret``,
``fmv.s``, ``beqz``/``bnez``, ``neg``, and ``not``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .instructions import Instruction, OpClass, Opcode
from .registers import Register, parse_register

__all__ = ["AssemblyError", "Program", "assemble"]


class AssemblyError(ValueError):
    """Raised when assembly text cannot be parsed or resolved."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


@dataclass(frozen=True)
class Program:
    """An assembled instruction sequence.

    Attributes:
        instructions: instructions in program order with resolved addresses.
        labels: map of label name to byte address.
        base_address: address of the first instruction.
    """

    instructions: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)
    base_address: int = 0x1000

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    @property
    def end_address(self) -> int:
        """Address one past the last instruction."""
        return self.base_address + 4 * len(self.instructions)

    def at(self, address: int) -> Instruction:
        """Return the instruction at a byte address.

        Raises:
            KeyError: if the address is outside the program or misaligned.
        """
        offset = address - self.base_address
        if offset % 4 != 0 or not 0 <= offset < 4 * len(self.instructions):
            raise KeyError(f"no instruction at address {address:#x}")
        return self.instructions[offset // 4]

    def listing(self) -> str:
        """A human-readable disassembly listing."""
        addr_to_label = {addr: name for name, addr in self.labels.items()}
        lines = []
        for instr in self.instructions:
            label = addr_to_label.get(instr.address)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  {instr.address:#06x}:  {instr}")
        return "\n".join(lines)


_OPCODE_BY_NAME = {op.value: op for op in Opcode}

# Operand shapes, keyed by opcode group.
_NO_OPERANDS = {Opcode.NOP, Opcode.ECALL, Opcode.EBREAK, Opcode.FENCE}
_RD_RS1_RS2 = {
    op for op in Opcode
    if op.value in (
        "add sub sll slt sltu xor srl sra or and "
        "mul mulh mulhsu mulhu div divu rem remu "
        "addw subw sllw srlw sraw "
        "fadd.s fsub.s fmul.s fdiv.s fmin.s fmax.s "
        "fsgnj.s fsgnjn.s fsgnjx.s feq.s flt.s fle.s"
    ).split()
}
_RD_RS1_IMM = {
    op for op in Opcode
    if op.value in (
        "addi slti sltiu xori ori andi slli srli srai "
        "addiw slliw srliw sraiw"
    ).split()
}
_RD_RS1 = {
    op for op in Opcode
    if op.value in (
        "fsqrt.s fcvt.s.w fcvt.s.wu fcvt.w.s fcvt.wu.s fmv.x.w fmv.w.x"
    ).split()
}
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_imm(token: str, line_no: int) -> int:
    token = token.strip().lower().replace("_", "")
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad immediate {token!r}", line_no) from None


def _split_operands(rest: str) -> list[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def _parse_mem_operand(token: str, line_no: int) -> tuple[int, Register]:
    match = _MEM_RE.match(token.replace(" ", ""))
    if not match:
        raise AssemblyError(f"bad memory operand {token!r}", line_no)
    imm = _parse_imm(match.group(1), line_no)
    base = parse_register(match.group(2))
    return imm, base


def _expand_pseudo(mnemonic: str, operands: list[str],
                   line_no: int) -> list[tuple[str, list[str]]]:
    """Rewrite a pseudo-instruction into one or more base statements."""
    if mnemonic == "mv":
        _require(operands, 2, mnemonic, line_no)
        return [("addi", [operands[0], operands[1], "0"])]
    if mnemonic in ("li", "la"):
        # la is an alias here: the assembler has no relocations, so symbol
        # addresses must already be absolute constants.
        _require(operands, 2, mnemonic, line_no)
        value = _parse_imm(operands[1], line_no)
        if -2048 <= value < 2048:
            return [("addi", [operands[0], "zero", str(value)])]
        if not -(1 << 31) <= value < (1 << 31):
            raise AssemblyError(f"li immediate {value} exceeds 32 bits",
                                line_no)
        low = value & 0xFFF
        if low >= 0x800:
            low -= 0x1000
        high = ((value - low) >> 12) & 0xFFFFF
        statements = [("lui", [operands[0], str(high)])]
        if low:
            statements.append(("addi", [operands[0], operands[0], str(low)]))
        return statements
    if mnemonic == "j":
        _require(operands, 1, mnemonic, line_no)
        return [("jal", ["zero", operands[0]])]
    if mnemonic == "ret":
        _require(operands, 0, mnemonic, line_no)
        return [("jalr", ["zero", "ra", "0"])]
    if mnemonic == "beqz":
        _require(operands, 2, mnemonic, line_no)
        return [("beq", [operands[0], "zero", operands[1]])]
    if mnemonic == "bnez":
        _require(operands, 2, mnemonic, line_no)
        return [("bne", [operands[0], "zero", operands[1]])]
    if mnemonic == "neg":
        _require(operands, 2, mnemonic, line_no)
        return [("sub", [operands[0], "zero", operands[1]])]
    if mnemonic == "not":
        _require(operands, 2, mnemonic, line_no)
        return [("xori", [operands[0], operands[1], "-1"])]
    if mnemonic == "fmv.s":
        _require(operands, 2, mnemonic, line_no)
        return [("fsgnj.s", [operands[0], operands[1], operands[1]])]
    if mnemonic == "fneg.s":
        _require(operands, 2, mnemonic, line_no)
        return [("fsgnjn.s", [operands[0], operands[1], operands[1]])]
    if mnemonic == "fabs.s":
        _require(operands, 2, mnemonic, line_no)
        return [("fsgnjx.s", [operands[0], operands[1], operands[1]])]
    return [(mnemonic, operands)]


def _require(operands: list[str], count: int, mnemonic: str, line_no: int) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"{mnemonic} expects {count} operand(s), got {len(operands)}", line_no
        )


_COMMENT_RE = re.compile(r"(#|//|;).*$")


def assemble(text: str, base_address: int = 0x1000) -> Program:
    """Assemble RISC-V text into a :class:`Program`.

    Args:
        text: assembly source (labels, instructions, comments).
        base_address: byte address of the first instruction.

    Raises:
        AssemblyError: on syntax errors or unresolved labels.
    """
    # Pass 1: strip comments, collect labels and raw statements.
    statements: list[tuple[int, str, list[str]]] = []  # (line_no, mnemonic, operands)
    labels: dict[str, int] = {}
    address = base_address
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _COMMENT_RE.sub("", raw).strip()
        while line:
            label_match = re.match(r"^([A-Za-z_.][\w.]*)\s*:", line)
            if label_match:
                name = label_match.group(1)
                if name in labels:
                    raise AssemblyError(f"duplicate label {name!r}", line_no)
                labels[name] = address
                line = line[label_match.end():].strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        for expanded, expanded_operands in _expand_pseudo(mnemonic, operands,
                                                          line_no):
            if expanded not in _OPCODE_BY_NAME:
                raise AssemblyError(f"unknown mnemonic {expanded!r}", line_no)
            statements.append((line_no, expanded, expanded_operands))
            address += 4

    # Pass 2: build instructions with resolved branch offsets.
    instructions: list[Instruction] = []
    address = base_address
    for line_no, mnemonic, operands in statements:
        opcode = _OPCODE_BY_NAME[mnemonic]
        instr = _build(opcode, operands, address, labels, line_no)
        instructions.append(instr)
        address += 4
    return Program(tuple(instructions), labels, base_address)


def _resolve_target(token: str, address: int, labels: dict[str, int],
                    line_no: int) -> tuple[int, str | None]:
    """Resolve a branch target token to a PC-relative offset."""
    if token in labels:
        return labels[token] - address, token
    try:
        return int(token, 0), None
    except ValueError:
        raise AssemblyError(f"undefined label {token!r}", line_no) from None


def _build(opcode: Opcode, operands: list[str], address: int,
           labels: dict[str, int], line_no: int) -> Instruction:
    cls = Instruction(address, opcode).op_class  # class lookup only
    if opcode in _NO_OPERANDS:
        _require(operands, 0, opcode.value, line_no)
        return Instruction(address, opcode)
    if opcode in _RD_RS1_RS2:
        _require(operands, 3, opcode.value, line_no)
        return Instruction(
            address, opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            rs2=parse_register(operands[2]),
        )
    if opcode in _RD_RS1_IMM:
        _require(operands, 3, opcode.value, line_no)
        return Instruction(
            address, opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            imm=_parse_imm(operands[2], line_no),
        )
    if opcode in _RD_RS1:
        _require(operands, 2, opcode.value, line_no)
        return Instruction(
            address, opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
        )
    if cls is OpClass.LOAD:
        _require(operands, 2, opcode.value, line_no)
        imm, base = _parse_mem_operand(operands[1], line_no)
        return Instruction(
            address, opcode, rd=parse_register(operands[0]), rs1=base, imm=imm
        )
    if cls is OpClass.STORE:
        _require(operands, 2, opcode.value, line_no)
        imm, base = _parse_mem_operand(operands[1], line_no)
        return Instruction(
            address, opcode, rs1=base, rs2=parse_register(operands[0]), imm=imm
        )
    if cls is OpClass.BRANCH:
        _require(operands, 3, opcode.value, line_no)
        offset, label = _resolve_target(operands[2], address, labels, line_no)
        return Instruction(
            address, opcode,
            rs1=parse_register(operands[0]),
            rs2=parse_register(operands[1]),
            imm=offset, label=label,
        )
    if opcode is Opcode.JAL:
        _require(operands, 2, opcode.value, line_no)
        offset, label = _resolve_target(operands[1], address, labels, line_no)
        return Instruction(
            address, opcode, rd=parse_register(operands[0]), imm=offset, label=label
        )
    if opcode is Opcode.JALR:
        _require(operands, 3, opcode.value, line_no)
        return Instruction(
            address, opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            imm=_parse_imm(operands[2], line_no),
        )
    if opcode in (Opcode.LUI, Opcode.AUIPC):
        _require(operands, 2, opcode.value, line_no)
        return Instruction(
            address, opcode,
            rd=parse_register(operands[0]),
            imm=_parse_imm(operands[1], line_no),
        )
    if cls is OpClass.SYSTEM:  # csrrw rd, csr, rs1 — modeled loosely
        return Instruction(address, opcode)
    raise AssemblyError(f"unhandled opcode {opcode.value!r}", line_no)
