"""RISC-V instruction model used across the whole library.

The model covers the subset MESA's hardware supports (paper §5: RV32IMF, with
RV64I word widths treated as a configuration property of the backend): integer
ALU/mul/div, single-precision floating point, loads/stores, branches/jumps,
and the system instructions that *disqualify* a loop in condition C2.

Each instruction exposes at most **two register sources** (``sources``), in
line with the paper's DFG model ("each instruction has up to two predecessor
instructions s1, s2").  Fused multiply-add (three sources) is deliberately
excluded, matching the hardware's constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .registers import Register

__all__ = ["OpClass", "Opcode", "Instruction", "OPCODE_CLASS", "RV64_ONLY"]


class OpClass(Enum):
    """Functional-unit class of an operation.

    The accelerator's per-PE capability masks (:math:`F_{op}`) and the latency
    model are both keyed by this class.
    """

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FP_SQRT = "fp_sqrt"
    FP_CMP = "fp_cmp"
    FP_CVT = "fp_cvt"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"

    # Members are singletons, so identity hashing is both correct and much
    # cheaper than the enum default; OpClass keys several per-instruction
    # dispatch tables on hot paths.
    __hash__ = object.__hash__

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)

    @property
    def is_fp(self) -> bool:
        return self in (
            OpClass.FP_ADD,
            OpClass.FP_MUL,
            OpClass.FP_DIV,
            OpClass.FP_SQRT,
            OpClass.FP_CMP,
            OpClass.FP_CVT,
        )

    @property
    def is_compute(self) -> bool:
        """True for operations that occupy an ALU/FPU (not memory/control)."""
        return not (self.is_memory or self.is_control or self is OpClass.SYSTEM)


class Opcode(Enum):
    """Mnemonics of the supported RV32IMF subset (plus pseudo-ops)."""

    # RV32I integer register-register
    ADD = "add"
    SUB = "sub"
    SLL = "sll"
    SLT = "slt"
    SLTU = "sltu"
    XOR = "xor"
    SRL = "srl"
    SRA = "sra"
    OR = "or"
    AND = "and"
    # RV32I integer register-immediate
    ADDI = "addi"
    SLTI = "slti"
    SLTIU = "sltiu"
    XORI = "xori"
    ORI = "ori"
    ANDI = "andi"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    LUI = "lui"
    AUIPC = "auipc"
    # RV32M
    MUL = "mul"
    MULH = "mulh"
    MULHSU = "mulhsu"
    MULHU = "mulhu"
    DIV = "div"
    DIVU = "divu"
    REM = "rem"
    REMU = "remu"
    # Loads / stores
    LB = "lb"
    LH = "lh"
    LW = "lw"
    LBU = "lbu"
    LHU = "lhu"
    SB = "sb"
    SH = "sh"
    SW = "sw"
    FLW = "flw"
    FSW = "fsw"
    # RV64I loads / stores
    LD = "ld"
    LWU = "lwu"
    SD = "sd"
    # RV64I word-width (W) arithmetic: 32-bit ops sign-extended to 64 bits
    ADDIW = "addiw"
    SLLIW = "slliw"
    SRLIW = "srliw"
    SRAIW = "sraiw"
    ADDW = "addw"
    SUBW = "subw"
    SLLW = "sllw"
    SRLW = "srlw"
    SRAW = "sraw"
    # Branches / jumps
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JAL = "jal"
    JALR = "jalr"
    # RV32F (no fused multiply-add: >2 sources is unsupported by the DFG)
    FADD_S = "fadd.s"
    FSUB_S = "fsub.s"
    FMUL_S = "fmul.s"
    FDIV_S = "fdiv.s"
    FSQRT_S = "fsqrt.s"
    FMIN_S = "fmin.s"
    FMAX_S = "fmax.s"
    FSGNJ_S = "fsgnj.s"
    FSGNJN_S = "fsgnjn.s"
    FSGNJX_S = "fsgnjx.s"
    FEQ_S = "feq.s"
    FLT_S = "flt.s"
    FLE_S = "fle.s"
    FCVT_S_W = "fcvt.s.w"
    FCVT_S_WU = "fcvt.s.wu"
    FCVT_W_S = "fcvt.w.s"
    FCVT_WU_S = "fcvt.wu.s"
    FMV_X_W = "fmv.x.w"
    FMV_W_X = "fmv.w.x"
    # System (these disqualify a loop under condition C2)
    ECALL = "ecall"
    EBREAK = "ebreak"
    FENCE = "fence"
    CSRRW = "csrrw"
    CSRRS = "csrrs"
    CSRRC = "csrrc"
    # Pseudo
    NOP = "nop"

    __hash__ = object.__hash__

    def __str__(self) -> str:
        return self.value


_CLASS_GROUPS: dict[OpClass, tuple[Opcode, ...]] = {
    OpClass.INT_ALU: (
        Opcode.ADD, Opcode.SUB, Opcode.SLL, Opcode.SLT, Opcode.SLTU,
        Opcode.XOR, Opcode.SRL, Opcode.SRA, Opcode.OR, Opcode.AND,
        Opcode.ADDI, Opcode.SLTI, Opcode.SLTIU, Opcode.XORI, Opcode.ORI,
        Opcode.ANDI, Opcode.SLLI, Opcode.SRLI, Opcode.SRAI,
        Opcode.LUI, Opcode.AUIPC, Opcode.NOP,
        Opcode.ADDIW, Opcode.SLLIW, Opcode.SRLIW, Opcode.SRAIW,
        Opcode.ADDW, Opcode.SUBW, Opcode.SLLW, Opcode.SRLW, Opcode.SRAW,
    ),
    OpClass.INT_MUL: (Opcode.MUL, Opcode.MULH, Opcode.MULHSU, Opcode.MULHU),
    OpClass.INT_DIV: (Opcode.DIV, Opcode.DIVU, Opcode.REM, Opcode.REMU),
    OpClass.LOAD: (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU,
                   Opcode.FLW, Opcode.LD, Opcode.LWU),
    OpClass.STORE: (Opcode.SB, Opcode.SH, Opcode.SW, Opcode.FSW, Opcode.SD),
    OpClass.BRANCH: (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU),
    OpClass.JUMP: (Opcode.JAL, Opcode.JALR),
    OpClass.FP_ADD: (Opcode.FADD_S, Opcode.FSUB_S),
    OpClass.FP_MUL: (Opcode.FMUL_S,),
    OpClass.FP_DIV: (Opcode.FDIV_S,),
    OpClass.FP_SQRT: (Opcode.FSQRT_S,),
    OpClass.FP_CMP: (
        Opcode.FMIN_S, Opcode.FMAX_S, Opcode.FEQ_S, Opcode.FLT_S, Opcode.FLE_S,
        Opcode.FSGNJ_S, Opcode.FSGNJN_S, Opcode.FSGNJX_S,
    ),
    OpClass.FP_CVT: (
        Opcode.FCVT_S_W, Opcode.FCVT_S_WU, Opcode.FCVT_W_S, Opcode.FCVT_WU_S,
        Opcode.FMV_X_W, Opcode.FMV_W_X,
    ),
    OpClass.SYSTEM: (
        Opcode.ECALL, Opcode.EBREAK, Opcode.FENCE,
        Opcode.CSRRW, Opcode.CSRRS, Opcode.CSRRC,
    ),
}

#: Map from opcode to its functional-unit class.
OPCODE_CLASS: dict[Opcode, OpClass] = {
    op: cls for cls, ops in _CLASS_GROUPS.items() for op in ops
}

_missing = [op for op in Opcode if op not in OPCODE_CLASS]
assert not _missing, f"opcodes without a class: {_missing}"

#: RV64I-only opcodes: these disqualify a loop on a 32-bit backend
#: (condition C2: "64-bit operations on a 32-bit accelerator").
RV64_ONLY: frozenset[Opcode] = frozenset({
    Opcode.LD, Opcode.LWU, Opcode.SD,
    Opcode.ADDIW, Opcode.SLLIW, Opcode.SRLIW, Opcode.SRAIW,
    Opcode.ADDW, Opcode.SUBW, Opcode.SLLW, Opcode.SRLW, Opcode.SRAW,
})


@dataclass(frozen=True)
class Instruction:
    """A decoded RISC-V instruction at a specific address.

    Attributes:
        address: byte address of the instruction in the program.
        opcode: the mnemonic.
        rd: destination register, or ``None`` for stores/branches.
        rs1: first register source (base address for memory ops).
        rs2: second register source (store data, branch comparand).
        imm: immediate operand (offset for memory/branch ops), default 0.
        label: optional symbolic branch-target label kept for display.

    Derived facts (``op_class``, ``is_load``, ``sources``, ...) are computed
    once at construction and stored on the instance: every simulator loop —
    the functional executor, the CPU scoreboard, and the dataflow engine —
    reads them per dynamic instruction, so they must be plain attribute
    loads, not per-call dict lookups.  They are not dataclass fields, so
    equality, hashing, and ``repr`` still consider only the encoding above.
    """

    address: int
    opcode: Opcode
    rd: Register | None = None
    rs1: Register | None = None
    rs2: Register | None = None
    imm: int = 0
    label: str | None = None

    # Derived (non-field) attributes set by __post_init__: op_class, sources,
    # destination, is_load, is_store, is_memory, is_branch, is_jump,
    # is_control, is_system, is_fp, requires_rv64.

    def __post_init__(self) -> None:
        op_class = OPCODE_CLASS[self.opcode]
        setattr_ = object.__setattr__
        setattr_(self, "op_class", op_class)
        setattr_(self, "is_load", op_class is OpClass.LOAD)
        setattr_(self, "is_store", op_class is OpClass.STORE)
        setattr_(self, "is_memory",
                 op_class is OpClass.LOAD or op_class is OpClass.STORE)
        setattr_(self, "is_branch", op_class is OpClass.BRANCH)
        setattr_(self, "is_jump", op_class is OpClass.JUMP)
        setattr_(self, "is_control",
                 op_class is OpClass.BRANCH or op_class is OpClass.JUMP)
        setattr_(self, "is_system", op_class is OpClass.SYSTEM)
        setattr_(self, "is_fp", op_class.is_fp)
        setattr_(self, "requires_rv64", self.opcode in RV64_ONLY)
        setattr_(self, "sources", tuple(
            reg for reg in (self.rs1, self.rs2)
            if reg is not None and not reg.is_zero))
        setattr_(self, "destination",
                 None if self.rd is not None and self.rd.is_zero else self.rd)

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.address, self.opcode, self.rd, self.rs1,
                           self.rs2, self.imm, self.label))
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def is_backward_branch(self) -> bool:
        """True for a taken-backward control transfer (negative offset)."""
        return self.is_control and self.imm < 0

    @property
    def branch_target(self) -> int | None:
        """Target address of a PC-relative control transfer, if any."""
        if self.is_branch or self.opcode is Opcode.JAL:
            return self.address + self.imm
        return None

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands: list[str] = []
        if self.is_store:
            operands = [str(self.rs2), f"{self.imm}({self.rs1})"]
        elif self.is_load:
            operands = [str(self.rd), f"{self.imm}({self.rs1})"]
        elif self.is_branch:
            target = self.label or hex(self.address + self.imm)
            operands = [str(self.rs1), str(self.rs2), target]
        else:
            if self.rd is not None:
                operands.append(str(self.rd))
            if self.rs1 is not None:
                operands.append(str(self.rs1))
            if self.rs2 is not None:
                operands.append(str(self.rs2))
            if self.imm and not self.is_system:
                operands.append(str(self.imm))
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
