"""RISC-V ISA substrate: registers, instructions, assembler, codec, semantics.

This package provides the machine-code layer that both the CPU model and the
MESA controller consume.  The most commonly used entry points are:

* :func:`assemble` — turn RISC-V assembly text into a :class:`Program`;
* :class:`Instruction` / :class:`Opcode` / :class:`OpClass` — the decoded form;
* :func:`encode` / :func:`decode` — 32-bit machine-word codec;
* :class:`Executor` — the architectural (functional) reference model.
"""

from .assembler import AssemblyError, Program, assemble
from .encoding import EncodingError, decode, encode
from .instructions import Instruction, OpClass, Opcode, OPCODE_CLASS
from .registers import (
    FP_ABI_NAMES,
    INT_ABI_NAMES,
    Register,
    RegFile,
    ZERO,
    f,
    parse_register,
    x,
)
from .semantics import (
    ExecutionError,
    Executor,
    MachineState,
    MemoryLike,
    apply_operation,
    branch_taken,
    compile_branch,
    compile_operation,
    run,
)

__all__ = [
    "AssemblyError",
    "Program",
    "assemble",
    "EncodingError",
    "decode",
    "encode",
    "Instruction",
    "OpClass",
    "Opcode",
    "OPCODE_CLASS",
    "Register",
    "RegFile",
    "ZERO",
    "f",
    "x",
    "parse_register",
    "INT_ABI_NAMES",
    "FP_ABI_NAMES",
    "ExecutionError",
    "Executor",
    "MachineState",
    "MemoryLike",
    "run",
    "apply_operation",
    "branch_taken",
    "compile_branch",
    "compile_operation",
]
