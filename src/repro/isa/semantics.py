"""Functional (architectural) semantics of the supported RISC-V subset.

This executor computes *what* a program does — register and memory values and
the dynamic control-flow path — independent of *how long* it takes.  It is the
reference model the rest of the library is validated against:

* workload kernels are checked to compute the intended result;
* the accelerator's dataflow engine must produce the same architectural state
  as running the loop iterations on this executor (tested in
  ``tests/integration``);
* the CPU timing model consumes the dynamic instruction trace it generates.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Iterator, Protocol

from .assembler import Program
from .instructions import Instruction, Opcode
from .registers import RegFile, Register

__all__ = [
    "MemoryLike",
    "ExecutionError",
    "MachineState",
    "Executor",
    "run",
    "apply_operation",
    "branch_taken",
    "compile_operation",
    "compile_branch",
]

_MASK32 = 0xFFFFFFFF


def _ts(value: int, xlen: int = 32) -> int:
    """Truncate to xlen bits, interpreted as signed."""
    value &= (1 << xlen) - 1
    sign = 1 << (xlen - 1)
    return value - (1 << xlen) if value >= sign else value


def _tu(value: int, xlen: int = 32) -> int:
    """Truncate to xlen bits, interpreted as unsigned."""
    return value & ((1 << xlen) - 1)


class MemoryLike(Protocol):
    """The memory interface the executor needs (satisfied by repro.mem)."""

    def load(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned little-endian int."""
        ...

    def store(self, address: int, size: int, value: int) -> None:
        """Write ``size`` low bytes of ``value`` at ``address``."""
        ...


class ExecutionError(RuntimeError):
    """Raised on unexecutable instructions (system ops, runaway loops)."""


def _f32(value: float) -> float:
    """Round a Python float to single precision (the accelerator is FP32).

    Magnitudes beyond FP32 range overflow to ±inf, as IEEE-754
    round-to-nearest does in hardware (struct refuses to pack them).
    """
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.inf if value > 0 else -math.inf


class _DictMemory:
    """Sparse byte-addressed memory used when no hierarchy is supplied."""

    def __init__(self) -> None:
        self._bytes: dict[int, int] = {}

    def load(self, address: int, size: int) -> int:
        return int.from_bytes(
            bytes(self._bytes.get(address + i, 0) for i in range(size)), "little"
        )

    def store(self, address: int, size: int, value: int) -> None:
        for i, byte in enumerate(int(value).to_bytes(size, "little", signed=False)):
            self._bytes[address + i] = byte


@dataclass
class MachineState:
    """Architectural state: PC, integer/FP register files, and memory.

    ``xlen`` selects the integer register width: 32 (RV32, the default) or
    64 (RV64I, the other ISA variant MESA's hardware supports).
    """

    pc: int = 0
    memory: MemoryLike = field(default_factory=_DictMemory)
    xlen: int = 32
    _int_regs: list[int] = field(default_factory=lambda: [0] * 32)
    _fp_regs: list[float] = field(default_factory=lambda: [0.0] * 32)

    def __post_init__(self) -> None:
        if self.xlen not in (32, 64):
            raise ValueError(f"xlen must be 32 or 64, got {self.xlen}")

    def read(self, reg: Register) -> int | float:
        """Read a register (``x0`` always reads 0)."""
        if reg.file is RegFile.INT:
            return 0 if reg.index == 0 else self._int_regs[reg.index]
        return self._fp_regs[reg.index]

    def write(self, reg: Register, value: int | float) -> None:
        """Write a register (writes to ``x0`` are discarded)."""
        if reg.file is RegFile.INT:
            if reg.index != 0:
                self._int_regs[reg.index] = _ts(int(value), self.xlen)
        else:
            self._fp_regs[reg.index] = _f32(float(value))

    def snapshot(self) -> dict[str, int | float]:
        """Register values keyed by ABI name (for test assertions)."""
        from .registers import FP_ABI_NAMES, INT_ABI_NAMES

        regs: dict[str, int | float] = {}
        for i, name in enumerate(INT_ABI_NAMES):
            regs[name] = 0 if i == 0 else self._int_regs[i]
        for i, name in enumerate(FP_ABI_NAMES):
            regs[name] = self._fp_regs[i]
        return regs


def _div(a: int, b: int, xlen: int = 32) -> int:
    if b == 0:
        return -1
    if a == -(1 << (xlen - 1)) and b == -1:
        return a
    return int(a / b)  # truncating division, per the RISC-V spec


def _rem(a: int, b: int, xlen: int = 32) -> int:
    if b == 0:
        return a
    if a == -(1 << (xlen - 1)) and b == -1:
        return 0
    return a - _div(a, b, xlen) * b


_LOAD_SIZES = {Opcode.LB: 1, Opcode.LBU: 1, Opcode.LH: 2, Opcode.LHU: 2,
               Opcode.LW: 4, Opcode.FLW: 4, Opcode.LWU: 4, Opcode.LD: 8}
#: Loads whose value is sign-extended to the register width.
_SIGNED_LOADS = frozenset({Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LD})
_STORE_SIZES = {Opcode.SB: 1, Opcode.SH: 2, Opcode.SW: 4, Opcode.FSW: 4,
                Opcode.SD: 8}


class Executor:
    """Steps a :class:`MachineState` through a :class:`Program`."""

    def __init__(self, program: Program, state: MachineState | None = None) -> None:
        self.program = program
        self.state = state if state is not None else MachineState(pc=program.base_address)
        self.instret = 0  # dynamic instruction count

    def effective_address(self, instr: Instruction) -> int:
        """The memory address a load/store would access in the current state."""
        if not instr.is_memory:
            raise ValueError(f"{instr} is not a memory instruction")
        assert instr.rs1 is not None
        return _tu(int(self.state.read(instr.rs1)) + instr.imm,
                   self.state.xlen)

    def step(self) -> Instruction:
        """Execute the instruction at PC; returns the executed instruction."""
        instr = self.program.at(self.state.pc)
        next_pc = self.state.pc + 4
        taken_pc = self._execute(instr)
        self.state.pc = taken_pc if taken_pc is not None else next_pc
        self.instret += 1
        return instr

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until PC leaves the program; returns instructions executed.

        Raises:
            ExecutionError: if ``max_steps`` is exceeded.
        """
        steps = 0
        start = self.program.base_address
        while start <= self.state.pc < self.program.end_address:
            self.step()
            steps += 1
            if steps > max_steps:
                raise ExecutionError(f"exceeded {max_steps} steps (runaway loop?)")
        return steps

    def trace(self, max_steps: int = 1_000_000) -> Iterator[Instruction]:
        """Yield the dynamic instruction stream until the program exits."""
        steps = 0
        start = self.program.base_address
        while start <= self.state.pc < self.program.end_address:
            yield self.step()
            steps += 1
            if steps > max_steps:
                raise ExecutionError(f"exceeded {max_steps} steps (runaway loop?)")

    # -- per-opcode semantics -------------------------------------------------

    def _execute(self, instr: Instruction) -> int | None:
        """Apply an instruction's effects; return the taken PC if a transfer.

        Dispatch is a single per-opcode table lookup (``_DISPATCH``, built
        once at import) rather than a chain of set-membership tests — this
        sits under every functionally executed instruction.
        """
        handler = _DISPATCH.get(instr.opcode)
        if handler is None:
            if instr.is_system:
                raise ExecutionError(
                    f"system instruction not executable: {instr}")
            raise ExecutionError(f"no semantics for {instr}")
        return handler(self, instr)

    def _require_rv64(self, instr: Instruction) -> None:
        if self.state.xlen != 64:
            raise ExecutionError(
                f"RV64I instruction {instr} on an RV32 (xlen=32) state"
            )


def _sext_bits(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


# Integer operations take (a, b, xlen): shifts mask by xlen-1, unsigned
# comparisons/divides reinterpret at the datapath width.
_INT_BINOPS = {
    Opcode.ADD: lambda a, b, w: a + b,
    Opcode.SUB: lambda a, b, w: a - b,
    Opcode.SLL: lambda a, b, w: _ts(a << (b & (w - 1)), w),
    Opcode.SLT: lambda a, b, w: int(a < b),
    Opcode.SLTU: lambda a, b, w: int(_tu(a, w) < _tu(b, w)),
    Opcode.XOR: lambda a, b, w: a ^ b,
    Opcode.SRL: lambda a, b, w: _ts(_tu(a, w) >> (b & (w - 1)), w),
    Opcode.SRA: lambda a, b, w: a >> (b & (w - 1)),
    Opcode.OR: lambda a, b, w: a | b,
    Opcode.AND: lambda a, b, w: a & b,
    Opcode.MUL: lambda a, b, w: _ts(a * b, w),
    Opcode.MULH: lambda a, b, w: (a * b) >> w,
    Opcode.MULHSU: lambda a, b, w: (a * _tu(b, w)) >> w,
    Opcode.MULHU: lambda a, b, w: (_tu(a, w) * _tu(b, w)) >> w,
    Opcode.DIV: lambda a, b, w: _div(a, b, w),
    Opcode.DIVU: lambda a, b, w: _ts(
        (1 << w) - 1 if b == 0 else _tu(a, w) // _tu(b, w), w
    ),
    Opcode.REM: lambda a, b, w: _rem(a, b, w),
    Opcode.REMU: lambda a, b, w: _ts(
        _tu(a, w) if b == 0 else _tu(a, w) % _tu(b, w), w
    ),
}

_INT_IMMOPS = {
    Opcode.ADDI: lambda a, i, w: a + i,
    Opcode.SLTI: lambda a, i, w: int(a < i),
    Opcode.SLTIU: lambda a, i, w: int(_tu(a, w) < _tu(i, w)),
    Opcode.XORI: lambda a, i, w: a ^ i,
    Opcode.ORI: lambda a, i, w: a | i,
    Opcode.ANDI: lambda a, i, w: a & i,
    Opcode.SLLI: lambda a, i, w: _ts(a << (i & (w - 1)), w),
    Opcode.SRLI: lambda a, i, w: _ts(_tu(a, w) >> (i & (w - 1)), w),
    Opcode.SRAI: lambda a, i, w: a >> (i & (w - 1)),
}

# RV64I W-forms: operate on the low 32 bits, sign-extend the 32-bit result.
_INT_W_BINOPS = {
    Opcode.ADDW: lambda a, b: _ts(a + b, 32),
    Opcode.SUBW: lambda a, b: _ts(a - b, 32),
    Opcode.SLLW: lambda a, b: _ts(a << (b & 31), 32),
    Opcode.SRLW: lambda a, b: _ts(_tu(a, 32) >> (b & 31), 32),
    Opcode.SRAW: lambda a, b: _ts(_ts(a, 32) >> (b & 31), 32),
}

_INT_W_IMMOPS = {
    Opcode.ADDIW: lambda a, i: _ts(a + i, 32),
    Opcode.SLLIW: lambda a, i: _ts(a << (i & 31), 32),
    Opcode.SRLIW: lambda a, i: _ts(_tu(a, 32) >> (i & 31), 32),
    Opcode.SRAIW: lambda a, i: _ts(_ts(a, 32) >> (i & 31), 32),
}

_BRANCH_CONDS = {
    Opcode.BEQ: lambda a, b, w=32: a == b,
    Opcode.BNE: lambda a, b, w=32: a != b,
    Opcode.BLT: lambda a, b, w=32: a < b,
    Opcode.BGE: lambda a, b, w=32: a >= b,
    Opcode.BLTU: lambda a, b, w=32: _tu(a, w) < _tu(b, w),
    Opcode.BGEU: lambda a, b, w=32: _tu(a, w) >= _tu(b, w),
}

_FP_BINOPS = {
    Opcode.FADD_S: lambda a, b: a + b,
    Opcode.FSUB_S: lambda a, b: a - b,
    Opcode.FMUL_S: lambda a, b: a * b,
    Opcode.FDIV_S: lambda a, b: a / b if b != 0.0 else math.copysign(math.inf, a) if a else math.nan,
    Opcode.FMIN_S: min,
    Opcode.FMAX_S: max,
    Opcode.FSGNJ_S: lambda a, b: math.copysign(abs(a), b),
    Opcode.FSGNJN_S: lambda a, b: math.copysign(abs(a), -b),
    Opcode.FSGNJX_S: lambda a, b: a if b >= 0 else -a,
}

_FP_CMPOPS = {
    Opcode.FEQ_S: lambda a, b: a == b,
    Opcode.FLT_S: lambda a, b: a < b,
    Opcode.FLE_S: lambda a, b: a <= b,
}

_FP_UNARY = {
    Opcode.FCVT_S_W: lambda v: float(int(v)),
    Opcode.FCVT_S_WU: lambda v: float(_tu(int(v), 32)),
    Opcode.FCVT_W_S: lambda v: int(v),
    Opcode.FCVT_WU_S: lambda v: int(v),
    Opcode.FMV_X_W: lambda v: struct.unpack(
        "<i", struct.pack("<f", float(v)))[0],
    Opcode.FMV_W_X: lambda v: struct.unpack(
        "<f", struct.pack("<i", _ts(int(v), 32)))[0],
}


# -- per-opcode dispatch table ------------------------------------------------
#
# One handler per opcode, closed over that opcode's semantic function.  The
# handlers reproduce the per-group bodies of the previous ``_execute``
# if-chain exactly; only the dispatch mechanism changed.

def _h_nop(ex: "Executor", instr: Instruction) -> None:
    return None


def _make_int_w_binop(fn):
    def handler(ex: "Executor", instr: Instruction) -> None:
        assert instr.rd and instr.rs1 and instr.rs2
        ex._require_rv64(instr)
        st = ex.state
        st.write(instr.rd, fn(int(st.read(instr.rs1)), int(st.read(instr.rs2))))
        return None
    return handler


def _make_int_w_immop(fn):
    def handler(ex: "Executor", instr: Instruction) -> None:
        assert instr.rd and instr.rs1
        ex._require_rv64(instr)
        st = ex.state
        st.write(instr.rd, fn(int(st.read(instr.rs1)), instr.imm))
        return None
    return handler


def _make_int_binop(fn):
    def handler(ex: "Executor", instr: Instruction) -> None:
        assert instr.rd and instr.rs1 and instr.rs2
        st = ex.state
        st.write(instr.rd, fn(int(st.read(instr.rs1)),
                              int(st.read(instr.rs2)), st.xlen))
        return None
    return handler


def _make_int_immop(fn):
    def handler(ex: "Executor", instr: Instruction) -> None:
        assert instr.rd and instr.rs1
        st = ex.state
        st.write(instr.rd, fn(int(st.read(instr.rs1)), instr.imm, st.xlen))
        return None
    return handler


def _h_lui(ex: "Executor", instr: Instruction) -> None:
    assert instr.rd
    ex.state.write(instr.rd, _ts(instr.imm << 12, 32))
    return None


def _h_auipc(ex: "Executor", instr: Instruction) -> None:
    assert instr.rd
    st = ex.state
    st.write(instr.rd, _ts(instr.address + (instr.imm << 12), st.xlen))
    return None


def _h_load(ex: "Executor", instr: Instruction) -> None:
    assert instr.rd
    if instr.requires_rv64:
        ex._require_rv64(instr)
    st = ex.state
    addr = ex.effective_address(instr)
    op = instr.opcode
    size = _LOAD_SIZES[op]
    raw = st.memory.load(addr, size)
    if op is Opcode.FLW:
        st.write(instr.rd, struct.unpack("<f", raw.to_bytes(4, "little"))[0])
    elif op in _SIGNED_LOADS:
        st.write(instr.rd, _sext_bits(raw, size * 8))
    else:
        st.write(instr.rd, raw)
    return None


def _h_store(ex: "Executor", instr: Instruction) -> None:
    assert instr.rs2
    if instr.requires_rv64:
        ex._require_rv64(instr)
    st = ex.state
    addr = ex.effective_address(instr)
    op = instr.opcode
    size = _STORE_SIZES[op]
    if op is Opcode.FSW:
        raw = int.from_bytes(struct.pack("<f", float(st.read(instr.rs2))),
                             "little")
    else:
        raw = int(st.read(instr.rs2)) & ((1 << (size * 8)) - 1)
    st.memory.store(addr, size, raw)
    return None


def _make_branch(cond):
    def handler(ex: "Executor", instr: Instruction) -> int | None:
        assert instr.rs1 and instr.rs2 is not None
        st = ex.state
        a, b = int(st.read(instr.rs1)), int(st.read(instr.rs2))
        if cond(a, b, st.xlen):
            return instr.address + instr.imm
        return None
    return handler


def _h_jal(ex: "Executor", instr: Instruction) -> int:
    assert instr.rd is not None
    ex.state.write(instr.rd, instr.address + 4)
    return instr.address + instr.imm


def _h_jalr(ex: "Executor", instr: Instruction) -> int:
    assert instr.rd is not None and instr.rs1 is not None
    st = ex.state
    target = (int(st.read(instr.rs1)) + instr.imm) & ~1
    st.write(instr.rd, instr.address + 4)
    return _tu(target, st.xlen)


def _make_fp_binop(fn):
    def handler(ex: "Executor", instr: Instruction) -> None:
        assert instr.rd and instr.rs1 and instr.rs2
        st = ex.state
        st.write(instr.rd, fn(float(st.read(instr.rs1)),
                              float(st.read(instr.rs2))))
        return None
    return handler


def _make_fp_cmpop(fn):
    def handler(ex: "Executor", instr: Instruction) -> None:
        assert instr.rd and instr.rs1 and instr.rs2
        st = ex.state
        st.write(instr.rd, int(fn(float(st.read(instr.rs1)),
                                  float(st.read(instr.rs2)))))
        return None
    return handler


def _h_fsqrt(ex: "Executor", instr: Instruction) -> None:
    assert instr.rd and instr.rs1
    st = ex.state
    value = float(st.read(instr.rs1))
    st.write(instr.rd, math.sqrt(value) if value >= 0 else float("nan"))
    return None


def _make_fp_unary(fn):
    def handler(ex: "Executor", instr: Instruction) -> None:
        assert instr.rd and instr.rs1
        st = ex.state
        st.write(instr.rd, fn(st.read(instr.rs1)))
        return None
    return handler


def _build_dispatch() -> dict[Opcode, object]:
    dispatch: dict[Opcode, object] = {Opcode.NOP: _h_nop}
    for op, fn in _INT_W_BINOPS.items():
        dispatch[op] = _make_int_w_binop(fn)
    for op, fn in _INT_W_IMMOPS.items():
        dispatch[op] = _make_int_w_immop(fn)
    for op, fn in _INT_BINOPS.items():
        dispatch[op] = _make_int_binop(fn)
    for op, fn in _INT_IMMOPS.items():
        dispatch[op] = _make_int_immop(fn)
    dispatch[Opcode.LUI] = _h_lui
    dispatch[Opcode.AUIPC] = _h_auipc
    for op in _LOAD_SIZES:
        dispatch[op] = _h_load
    for op in _STORE_SIZES:
        dispatch[op] = _h_store
    for op, cond in _BRANCH_CONDS.items():
        dispatch[op] = _make_branch(cond)
    dispatch[Opcode.JAL] = _h_jal
    dispatch[Opcode.JALR] = _h_jalr
    for op, fn in _FP_BINOPS.items():
        dispatch[op] = _make_fp_binop(fn)
    for op, fn in _FP_CMPOPS.items():
        dispatch[op] = _make_fp_cmpop(fn)
    dispatch[Opcode.FSQRT_S] = _h_fsqrt
    for op, fn in _FP_UNARY.items():
        dispatch[op] = _make_fp_unary(fn)
    return dispatch


_DISPATCH = _build_dispatch()


def apply_operation(instr: Instruction, a: int | float = 0,
                    b: int | float = 0, xlen: int = 32) -> int | float:
    """Evaluate a *compute* instruction as a pure function of its operands.

    This is the per-PE semantics of the spatial accelerator: given the
    (resolved) source values, return the produced value.  Memory, control,
    and system instructions are not computable here.

    Args:
        instr: the instruction (its immediate is used where applicable).
        a: value of source 1.
        b: value of source 2 (ignored by immediate/unary forms).
        xlen: the PE datapath width (32 for the paper's RV32IMF backend).

    Raises:
        ExecutionError: for non-compute instructions.
    """
    op = instr.opcode
    if op is Opcode.NOP:
        return 0
    if op in _INT_W_BINOPS:
        return _INT_W_BINOPS[op](int(a), int(b))
    if op in _INT_W_IMMOPS:
        return _INT_W_IMMOPS[op](int(a), instr.imm)
    if op in _INT_BINOPS:
        return _ts(_INT_BINOPS[op](int(a), int(b), xlen), xlen)
    if op in _INT_IMMOPS:
        return _ts(_INT_IMMOPS[op](int(a), instr.imm, xlen), xlen)
    if op is Opcode.LUI:
        return _ts(instr.imm << 12, 32)
    if op is Opcode.AUIPC:
        return _ts(instr.address + (instr.imm << 12), xlen)
    if op in _FP_BINOPS:
        return _f32(_FP_BINOPS[op](float(a), float(b)))
    if op in _FP_CMPOPS:
        return int(_FP_CMPOPS[op](float(a), float(b)))
    if op is Opcode.FSQRT_S:
        value = float(a)
        return _f32(math.sqrt(value)) if value >= 0 else float("nan")
    if op in _FP_UNARY:
        result = _FP_UNARY[op](a)
        return _f32(result) if isinstance(result, float) else _ts(result, 32)
    raise ExecutionError(f"not a pure compute operation: {instr}")


def branch_taken(instr: Instruction, a: int | float, b: int | float) -> bool:
    """Evaluate a conditional branch's direction given its source values."""
    if instr.opcode in _BRANCH_CONDS:
        return _BRANCH_CONDS[instr.opcode](int(a), int(b))
    if instr.is_jump:
        return True
    raise ExecutionError(f"not a branch: {instr}")


def compile_operation(instr: Instruction, xlen: int = 32):
    """Specialize :func:`apply_operation` for one instruction.

    Returns a closure ``(a, b) -> value`` with the opcode dispatch, immediate,
    and datapath width already resolved — the per-PE semantics an execution
    plan (:mod:`repro.accel.plan`) bakes in at configuration time.  The
    closure is bit-identical to ``apply_operation(instr, a, b, xlen)`` for
    every input.

    Raises:
        ExecutionError: for non-compute instructions.
    """
    op = instr.opcode
    imm = instr.imm
    if op is Opcode.NOP:
        return lambda a, b: 0
    if op in _INT_W_BINOPS:
        fn = _INT_W_BINOPS[op]
        return lambda a, b: fn(int(a), int(b))
    if op in _INT_W_IMMOPS:
        fn = _INT_W_IMMOPS[op]
        return lambda a, b: fn(int(a), imm)
    if op in _INT_BINOPS:
        fn = _INT_BINOPS[op]
        return lambda a, b: _ts(fn(int(a), int(b), xlen), xlen)
    if op in _INT_IMMOPS:
        fn = _INT_IMMOPS[op]
        return lambda a, b: _ts(fn(int(a), imm, xlen), xlen)
    if op is Opcode.LUI:
        constant = _ts(imm << 12, 32)
        return lambda a, b: constant
    if op is Opcode.AUIPC:
        constant = _ts(instr.address + (imm << 12), xlen)
        return lambda a, b: constant
    if op in _FP_BINOPS:
        fn = _FP_BINOPS[op]
        return lambda a, b: _f32(fn(float(a), float(b)))
    if op in _FP_CMPOPS:
        fn = _FP_CMPOPS[op]
        return lambda a, b: int(fn(float(a), float(b)))
    if op is Opcode.FSQRT_S:
        def fsqrt(a, b):
            value = float(a)
            return _f32(math.sqrt(value)) if value >= 0 else float("nan")
        return fsqrt
    if op in _FP_UNARY:
        fn = _FP_UNARY[op]
        def fp_unary(a, b):
            result = fn(a)
            return _f32(result) if isinstance(result, float) else _ts(result, 32)
        return fp_unary
    raise ExecutionError(f"not a pure compute operation: {instr}")


def compile_branch(instr: Instruction):
    """Specialize :func:`branch_taken` for one instruction.

    Returns a closure ``(a, b) -> bool``; jumps compile to a constant taken.

    Raises:
        ExecutionError: for non-control instructions.
    """
    cond = _BRANCH_CONDS.get(instr.opcode)
    if cond is not None:
        return lambda a, b: cond(int(a), int(b))
    if instr.is_jump:
        return lambda a, b: True
    raise ExecutionError(f"not a branch: {instr}")


def run(program: Program, state: MachineState | None = None,
        max_steps: int = 1_000_000) -> MachineState:
    """Convenience wrapper: execute a program to completion, return state."""
    executor = Executor(program, state)
    executor.run(max_steps=max_steps)
    return executor.state
