"""Binary encoding and decoding of the supported RV32IMF subset.

MESA's trace cache stores raw instruction words fetched from the I-cache; the
LDFG builder then decodes them (paper Fig. 7, "Instr. Convert").  This module
provides that machine-code layer: :func:`encode` produces the standard 32-bit
RISC-V word for an :class:`~repro.isa.instructions.Instruction`, and
:func:`decode` recovers the instruction from a word.

All six base formats (R/I/S/B/U/J) plus the OP-FP R-type variants are
implemented.  Round-tripping ``decode(encode(i))`` preserves every
architecturally meaningful field.
"""

from __future__ import annotations

from .instructions import Instruction, Opcode
from .registers import Register, f, x

__all__ = ["EncodingError", "encode", "decode"]


class EncodingError(ValueError):
    """Raised when an instruction/word cannot be encoded/decoded."""


# Major opcode fields (bits [6:0]).
_OP = 0b0110011
_OP_IMM = 0b0010011
_LOAD = 0b0000011
_STORE = 0b0100011
_BRANCH = 0b1100011
_JAL = 0b1101111
_JALR = 0b1100111
_LUI = 0b0110111
_AUIPC = 0b0010111
_LOAD_FP = 0b0000111
_STORE_FP = 0b0100111
_OP_FP = 0b1010011
_SYSTEM = 0b1110011
_MISC_MEM = 0b0001111
_OP_32 = 0b0111011      # RV64I W-form register-register
_OP_IMM_32 = 0b0011011  # RV64I W-form register-immediate

# (major, funct3, funct7) per R-type opcode.
_R_TYPE: dict[Opcode, tuple[int, int]] = {
    Opcode.ADD: (0b000, 0b0000000),
    Opcode.SUB: (0b000, 0b0100000),
    Opcode.SLL: (0b001, 0b0000000),
    Opcode.SLT: (0b010, 0b0000000),
    Opcode.SLTU: (0b011, 0b0000000),
    Opcode.XOR: (0b100, 0b0000000),
    Opcode.SRL: (0b101, 0b0000000),
    Opcode.SRA: (0b101, 0b0100000),
    Opcode.OR: (0b110, 0b0000000),
    Opcode.AND: (0b111, 0b0000000),
    Opcode.MUL: (0b000, 0b0000001),
    Opcode.MULH: (0b001, 0b0000001),
    Opcode.MULHSU: (0b010, 0b0000001),
    Opcode.MULHU: (0b011, 0b0000001),
    Opcode.DIV: (0b100, 0b0000001),
    Opcode.DIVU: (0b101, 0b0000001),
    Opcode.REM: (0b110, 0b0000001),
    Opcode.REMU: (0b111, 0b0000001),
}
_R_LOOKUP = {v: k for k, v in _R_TYPE.items()}

_I_ALU: dict[Opcode, int] = {
    Opcode.ADDI: 0b000,
    Opcode.SLTI: 0b010,
    Opcode.SLTIU: 0b011,
    Opcode.XORI: 0b100,
    Opcode.ORI: 0b110,
    Opcode.ANDI: 0b111,
}
_I_ALU_LOOKUP = {v: k for k, v in _I_ALU.items()}

_SHIFT_IMM: dict[Opcode, tuple[int, int]] = {
    Opcode.SLLI: (0b001, 0b0000000),
    Opcode.SRLI: (0b101, 0b0000000),
    Opcode.SRAI: (0b101, 0b0100000),
}

_LOADS: dict[Opcode, int] = {
    Opcode.LB: 0b000, Opcode.LH: 0b001, Opcode.LW: 0b010,
    Opcode.LBU: 0b100, Opcode.LHU: 0b101,
    Opcode.LD: 0b011, Opcode.LWU: 0b110,
}
_LOADS_LOOKUP = {v: k for k, v in _LOADS.items()}

_STORES: dict[Opcode, int] = {Opcode.SB: 0b000, Opcode.SH: 0b001,
                              Opcode.SW: 0b010, Opcode.SD: 0b011}
_STORES_LOOKUP = {v: k for k, v in _STORES.items()}

_R_TYPE_32: dict[Opcode, tuple[int, int]] = {
    Opcode.ADDW: (0b000, 0b0000000),
    Opcode.SUBW: (0b000, 0b0100000),
    Opcode.SLLW: (0b001, 0b0000000),
    Opcode.SRLW: (0b101, 0b0000000),
    Opcode.SRAW: (0b101, 0b0100000),
}
_R_TYPE_32_LOOKUP = {v: k for k, v in _R_TYPE_32.items()}

_SHIFT_IMM_32: dict[Opcode, tuple[int, int]] = {
    Opcode.SLLIW: (0b001, 0b0000000),
    Opcode.SRLIW: (0b101, 0b0000000),
    Opcode.SRAIW: (0b101, 0b0100000),
}

_BRANCHES: dict[Opcode, int] = {
    Opcode.BEQ: 0b000, Opcode.BNE: 0b001, Opcode.BLT: 0b100,
    Opcode.BGE: 0b101, Opcode.BLTU: 0b110, Opcode.BGEU: 0b111,
}
_BRANCHES_LOOKUP = {v: k for k, v in _BRANCHES.items()}

# OP-FP instructions: funct7, plus funct3 or rs2-field discriminators.
_FP_ARITH: dict[Opcode, int] = {
    Opcode.FADD_S: 0b0000000,
    Opcode.FSUB_S: 0b0000100,
    Opcode.FMUL_S: 0b0001000,
    Opcode.FDIV_S: 0b0001100,
}
_FP_ARITH_LOOKUP = {v: k for k, v in _FP_ARITH.items()}

_FP_SGNJ: dict[Opcode, int] = {
    Opcode.FSGNJ_S: 0b000, Opcode.FSGNJN_S: 0b001, Opcode.FSGNJX_S: 0b010,
}
_FP_SGNJ_LOOKUP = {v: k for k, v in _FP_SGNJ.items()}

_FP_MINMAX: dict[Opcode, int] = {Opcode.FMIN_S: 0b000, Opcode.FMAX_S: 0b001}
_FP_CMP: dict[Opcode, int] = {
    Opcode.FLE_S: 0b000, Opcode.FLT_S: 0b001, Opcode.FEQ_S: 0b010,
}
_FP_CMP_LOOKUP = {v: k for k, v in _FP_CMP.items()}

_ROUND_MODE = 0b000  # RNE; rounding mode is not modeled


def _reg_num(reg: Register | None) -> int:
    return 0 if reg is None else reg.index


def _check_range(value: int, bits: int, what: str) -> int:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1))
    if not low <= value < high:
        raise EncodingError(f"{what} {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _r(major: int, funct3: int, funct7: int, rd: int, rs1: int, rs2: int) -> int:
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | major


def _i(major: int, funct3: int, rd: int, rs1: int, imm: int) -> int:
    return (imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | major


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 32-bit RISC-V machine word."""
    op = instr.opcode
    rd, rs1, rs2 = _reg_num(instr.rd), _reg_num(instr.rs1), _reg_num(instr.rs2)
    imm = instr.imm

    if op is Opcode.NOP:
        return _i(_OP_IMM, 0b000, 0, 0, 0)  # addi x0, x0, 0
    if op in _R_TYPE:
        funct3, funct7 = _R_TYPE[op]
        return _r(_OP, funct3, funct7, rd, rs1, rs2)
    if op in _R_TYPE_32:
        funct3, funct7 = _R_TYPE_32[op]
        return _r(_OP_32, funct3, funct7, rd, rs1, rs2)
    if op in _I_ALU:
        return _i(_OP_IMM, _I_ALU[op], rd, rs1, _check_range(imm, 12, "immediate"))
    if op is Opcode.ADDIW:
        return _i(_OP_IMM_32, 0b000, rd, rs1, _check_range(imm, 12, "immediate"))
    if op in _SHIFT_IMM_32:
        funct3, funct7 = _SHIFT_IMM_32[op]
        if not 0 <= imm < 32:
            raise EncodingError(f"shift amount {imm} out of range")
        return _r(_OP_IMM_32, funct3, funct7, rd, rs1, imm)
    if op in _SHIFT_IMM:
        funct3, funct7 = _SHIFT_IMM[op]
        if not 0 <= imm < 32:
            raise EncodingError(f"shift amount {imm} out of range")
        return _r(_OP_IMM, funct3, funct7, rd, rs1, imm)
    if op in _LOADS:
        return _i(_LOAD, _LOADS[op], rd, rs1, _check_range(imm, 12, "offset"))
    if op is Opcode.FLW:
        return _i(_LOAD_FP, 0b010, rd, rs1, _check_range(imm, 12, "offset"))
    if op in _STORES or op is Opcode.FSW:
        major = _STORE_FP if op is Opcode.FSW else _STORE
        funct3 = 0b010 if op is Opcode.FSW else _STORES[op]
        uimm = _check_range(imm, 12, "offset")
        return (
            ((uimm >> 5) << 25) | (rs2 << 20) | (rs1 << 15)
            | (funct3 << 12) | ((uimm & 0x1F) << 7) | major
        )
    if op in _BRANCHES:
        uimm = _check_range(imm, 13, "branch offset")
        if uimm & 1:
            raise EncodingError("branch offset must be even")
        return (
            ((uimm >> 12) & 1) << 31 | ((uimm >> 5) & 0x3F) << 25
            | rs2 << 20 | rs1 << 15 | _BRANCHES[op] << 12
            | ((uimm >> 1) & 0xF) << 8 | ((uimm >> 11) & 1) << 7 | _BRANCH
        )
    if op is Opcode.JAL:
        uimm = _check_range(imm, 21, "jump offset")
        if uimm & 1:
            raise EncodingError("jump offset must be even")
        return (
            ((uimm >> 20) & 1) << 31 | ((uimm >> 1) & 0x3FF) << 21
            | ((uimm >> 11) & 1) << 20 | ((uimm >> 12) & 0xFF) << 12
            | rd << 7 | _JAL
        )
    if op is Opcode.JALR:
        return _i(_JALR, 0b000, rd, rs1, _check_range(imm, 12, "offset"))
    if op in (Opcode.LUI, Opcode.AUIPC):
        major = _LUI if op is Opcode.LUI else _AUIPC
        if not 0 <= imm < (1 << 20):
            raise EncodingError(f"upper immediate {imm} out of range")
        return (imm << 12) | (rd << 7) | major
    if op in _FP_ARITH:
        return _r(_OP_FP, _ROUND_MODE, _FP_ARITH[op], rd, rs1, rs2)
    if op is Opcode.FSQRT_S:
        return _r(_OP_FP, _ROUND_MODE, 0b0101100, rd, rs1, 0)
    if op in _FP_SGNJ:
        return _r(_OP_FP, _FP_SGNJ[op], 0b0010000, rd, rs1, rs2)
    if op in _FP_MINMAX:
        return _r(_OP_FP, _FP_MINMAX[op], 0b0010100, rd, rs1, rs2)
    if op in _FP_CMP:
        return _r(_OP_FP, _FP_CMP[op], 0b1010000, rd, rs1, rs2)
    if op is Opcode.FCVT_W_S:
        return _r(_OP_FP, _ROUND_MODE, 0b1100000, rd, rs1, 0)
    if op is Opcode.FCVT_WU_S:
        return _r(_OP_FP, _ROUND_MODE, 0b1100000, rd, rs1, 1)
    if op is Opcode.FCVT_S_W:
        return _r(_OP_FP, _ROUND_MODE, 0b1101000, rd, rs1, 0)
    if op is Opcode.FCVT_S_WU:
        return _r(_OP_FP, _ROUND_MODE, 0b1101000, rd, rs1, 1)
    if op is Opcode.FMV_X_W:
        return _r(_OP_FP, 0b000, 0b1110000, rd, rs1, 0)
    if op is Opcode.FMV_W_X:
        return _r(_OP_FP, 0b000, 0b1111000, rd, rs1, 0)
    if op is Opcode.ECALL:
        return _i(_SYSTEM, 0b000, 0, 0, 0)
    if op is Opcode.EBREAK:
        return _i(_SYSTEM, 0b000, 0, 0, 1)
    if op is Opcode.FENCE:
        return _i(_MISC_MEM, 0b000, 0, 0, 0)
    if op in (Opcode.CSRRW, Opcode.CSRRS, Opcode.CSRRC):
        funct3 = {Opcode.CSRRW: 0b001, Opcode.CSRRS: 0b010, Opcode.CSRRC: 0b011}[op]
        return _i(_SYSTEM, funct3, rd, rs1, instr.imm & 0xFFF)
    raise EncodingError(f"cannot encode opcode {op.value!r}")


def decode(word: int, address: int = 0) -> Instruction:
    """Decode a 32-bit machine word into an :class:`Instruction`.

    Args:
        word: the instruction word.
        address: byte address to attach to the decoded instruction.

    Raises:
        EncodingError: if the word is not a supported instruction.
    """
    major = word & 0x7F
    rd_n = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1_n = (word >> 15) & 0x1F
    rs2_n = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    imm_i = _sext(word >> 20, 12)

    if major == _OP:
        key = (funct3, funct7)
        if key not in _R_LOOKUP:
            raise EncodingError(f"unknown R-type funct {key}")
        return Instruction(address, _R_LOOKUP[key], rd=x(rd_n), rs1=x(rs1_n), rs2=x(rs2_n))
    if major == _OP_32:
        key = (funct3, funct7)
        if key not in _R_TYPE_32_LOOKUP:
            raise EncodingError(f"unknown OP-32 funct {key}")
        return Instruction(address, _R_TYPE_32_LOOKUP[key],
                           rd=x(rd_n), rs1=x(rs1_n), rs2=x(rs2_n))
    if major == _OP_IMM_32:
        if funct3 == 0b000:
            return Instruction(address, Opcode.ADDIW, rd=x(rd_n),
                               rs1=x(rs1_n), imm=imm_i)
        if funct3 == 0b001:
            return Instruction(address, Opcode.SLLIW, rd=x(rd_n),
                               rs1=x(rs1_n), imm=rs2_n)
        if funct3 == 0b101:
            op = Opcode.SRAIW if funct7 == 0b0100000 else Opcode.SRLIW
            return Instruction(address, op, rd=x(rd_n), rs1=x(rs1_n),
                               imm=rs2_n)
        raise EncodingError(f"unknown OP-IMM-32 funct3 {funct3:#b}")
    if major == _OP_IMM:
        if funct3 in (0b001, 0b101):
            shamt = rs2_n
            if funct3 == 0b001:
                op = Opcode.SLLI
            else:
                op = Opcode.SRAI if funct7 == 0b0100000 else Opcode.SRLI
            return Instruction(address, op, rd=x(rd_n), rs1=x(rs1_n), imm=shamt)
        op = _I_ALU_LOOKUP[funct3]
        if op is Opcode.ADDI and rd_n == 0 and rs1_n == 0 and imm_i == 0:
            return Instruction(address, Opcode.NOP)
        return Instruction(address, op, rd=x(rd_n), rs1=x(rs1_n), imm=imm_i)
    if major == _LOAD:
        if funct3 not in _LOADS_LOOKUP:
            raise EncodingError(f"unknown load funct3 {funct3:#b}")
        return Instruction(address, _LOADS_LOOKUP[funct3], rd=x(rd_n), rs1=x(rs1_n), imm=imm_i)
    if major == _LOAD_FP:
        if funct3 != 0b010:
            raise EncodingError("only FLW is supported")
        return Instruction(address, Opcode.FLW, rd=f(rd_n), rs1=x(rs1_n), imm=imm_i)
    if major in (_STORE, _STORE_FP):
        imm = _sext(((word >> 25) << 5) | rd_n, 12)
        if major == _STORE_FP:
            if funct3 != 0b010:
                raise EncodingError("only FSW is supported")
            return Instruction(address, Opcode.FSW, rs1=x(rs1_n), rs2=f(rs2_n), imm=imm)
        if funct3 not in _STORES_LOOKUP:
            raise EncodingError(f"unknown store funct3 {funct3:#b}")
        return Instruction(address, _STORES_LOOKUP[funct3], rs1=x(rs1_n), rs2=x(rs2_n), imm=imm)
    if major == _BRANCH:
        imm = _sext(
            (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1),
            13,
        )
        if funct3 not in _BRANCHES_LOOKUP:
            raise EncodingError(f"unknown branch funct3 {funct3:#b}")
        return Instruction(address, _BRANCHES_LOOKUP[funct3], rs1=x(rs1_n), rs2=x(rs2_n), imm=imm)
    if major == _JAL:
        imm = _sext(
            (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1),
            21,
        )
        return Instruction(address, Opcode.JAL, rd=x(rd_n), imm=imm)
    if major == _JALR:
        return Instruction(address, Opcode.JALR, rd=x(rd_n), rs1=x(rs1_n), imm=imm_i)
    if major in (_LUI, _AUIPC):
        op = Opcode.LUI if major == _LUI else Opcode.AUIPC
        return Instruction(address, op, rd=x(rd_n), imm=(word >> 12) & 0xFFFFF)
    if major == _OP_FP:
        return _decode_fp(word, address, rd_n, funct3, rs1_n, rs2_n, funct7)
    if major == _SYSTEM:
        if funct3 == 0b000:
            op = Opcode.EBREAK if (word >> 20) & 0xFFF == 1 else Opcode.ECALL
            return Instruction(address, op)
        csr_ops = {0b001: Opcode.CSRRW, 0b010: Opcode.CSRRS, 0b011: Opcode.CSRRC}
        if funct3 in csr_ops:
            return Instruction(address, csr_ops[funct3], rd=x(rd_n), rs1=x(rs1_n),
                               imm=(word >> 20) & 0xFFF)
        raise EncodingError(f"unknown system funct3 {funct3:#b}")
    if major == _MISC_MEM:
        return Instruction(address, Opcode.FENCE)
    raise EncodingError(f"unknown major opcode {major:#09b}")


def _decode_fp(word: int, address: int, rd_n: int, funct3: int,
               rs1_n: int, rs2_n: int, funct7: int) -> Instruction:
    if funct7 in _FP_ARITH_LOOKUP:
        op = _FP_ARITH_LOOKUP[funct7]
        return Instruction(address, op, rd=f(rd_n), rs1=f(rs1_n), rs2=f(rs2_n))
    if funct7 == 0b0101100:
        return Instruction(address, Opcode.FSQRT_S, rd=f(rd_n), rs1=f(rs1_n))
    if funct7 == 0b0010000:
        op = _FP_SGNJ_LOOKUP.get(funct3)
        if op is None:
            raise EncodingError(f"unknown fsgnj funct3 {funct3:#b}")
        return Instruction(address, op, rd=f(rd_n), rs1=f(rs1_n), rs2=f(rs2_n))
    if funct7 == 0b0010100:
        if funct3 not in (0b000, 0b001):
            raise EncodingError(f"unknown fmin/fmax funct3 {funct3:#b}")
        op = Opcode.FMIN_S if funct3 == 0b000 else Opcode.FMAX_S
        return Instruction(address, op, rd=f(rd_n), rs1=f(rs1_n), rs2=f(rs2_n))
    if funct7 == 0b1010000:
        op = _FP_CMP_LOOKUP.get(funct3)
        if op is None:
            raise EncodingError(f"unknown fp compare funct3 {funct3:#b}")
        return Instruction(address, op, rd=x(rd_n), rs1=f(rs1_n), rs2=f(rs2_n))
    if funct7 == 0b1100000:
        op = Opcode.FCVT_W_S if rs2_n == 0 else Opcode.FCVT_WU_S
        return Instruction(address, op, rd=x(rd_n), rs1=f(rs1_n))
    if funct7 == 0b1101000:
        op = Opcode.FCVT_S_W if rs2_n == 0 else Opcode.FCVT_S_WU
        return Instruction(address, op, rd=f(rd_n), rs1=x(rs1_n))
    if funct7 == 0b1110000:
        return Instruction(address, Opcode.FMV_X_W, rd=x(rd_n), rs1=f(rs1_n))
    if funct7 == 0b1111000:
        return Instruction(address, Opcode.FMV_W_X, rd=f(rd_n), rs1=x(rs1_n))
    raise EncodingError(f"unknown OP-FP funct7 {funct7:#09b}")
