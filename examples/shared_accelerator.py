#!/usr/bin/env python3
"""Multiple CPU threads sharing one accelerator through one controller.

The paper's first motivation (M1): "pooling together accelerator resources
as a shared scheduling target" — idle accelerator silicon gets repurposed
transparently, and a single MESA controller per chip arbitrates it.  This
example submits four threads (three accelerable, one that disqualifies) and
prints the shared-fabric timeline under both scheduling policies.

Run:  python examples/shared_accelerator.py
"""

from repro.accel import M_128
from repro.core import MesaSystem, SchedulingPolicy, ThreadSpec
from repro.harness import render_table
from repro.workloads import build_kernel


def make_threads() -> list[ThreadSpec]:
    threads = []
    for name in ("nn", "kmeans", "hotspot", "srad"):
        kernel = build_kernel(name, iterations=192)
        threads.append(ThreadSpec(
            name=name,
            program=kernel.program,
            state_factory=kernel.state_factory,
            parallelizable=kernel.parallelizable,
        ))
    return threads


def show(run, title: str) -> None:
    rows = []
    for outcome in run.outcomes:
        rows.append([
            outcome.name,
            outcome.accelerated,
            "-" if outcome.accel_start is None else f"{outcome.accel_start:.0f}",
            f"{outcome.wait_cycles:.0f}",
            f"{outcome.finish:.0f}",
        ])
    print(render_table(
        ["thread", "accelerated", "fabric start", "queued", "finish"],
        rows, title=title))
    print(f"makespan: {run.makespan:.0f} cycles "
          f"(all-CPU: {run.cpu_only_makespan:.0f}) "
          f"-> {run.speedup:.2f}x\n")


def main() -> None:
    print("=== one accelerator, four threads ===\n")
    threads = make_threads()

    fifo = MesaSystem(M_128, policy=SchedulingPolicy.FIFO).run(threads)
    show(fifo, "FIFO arbitration")

    best = MesaSystem(
        M_128, policy=SchedulingPolicy.BEST_SPEEDUP_FIRST).run(threads)
    show(best, "Best-expected-speedup-first arbitration")

    print("srad never touches the fabric (its inner loop fails C2), so its "
          "core runs it\nnormally — transparency means nothing ever breaks, "
          "some things just get faster.")


if __name__ == "__main__":
    main()
