#!/usr/bin/env python3
"""Design-space exploration: backend size and interconnect choice.

Sweeps the accelerator's PE count and interconnect topology for a chosen
kernel and prints how speedup, utilization, and mapping quality respond —
the kind of study MESA's backend-agnostic latency model makes cheap
(paper §3.3: any interconnect works "as long as point-to-point latency can
be modeled").

Run:  python examples/design_space.py [kernel]
"""

import sys
from dataclasses import replace

from repro.accel import AcceleratorConfig, InterconnectKind
from repro.core import MesaController
from repro.harness import render_table
from repro.workloads import build_kernel


def run_config(kernel_name: str, config: AcceleratorConfig):
    kernel = build_kernel(kernel_name, iterations=256)
    controller = MesaController(config)
    result = controller.execute(kernel.program, kernel.state_factory,
                                parallelizable=kernel.parallelizable)
    if not result.accelerated:
        return None
    return result


def main() -> None:
    kernel_name = sys.argv[1] if len(sys.argv) > 1 else "lavamd"
    print(f"=== design-space exploration: {kernel_name} ===\n")

    # Sweep 1: PE count (fixed memory system), via the sweep API.
    from repro.harness import pe_count_configs, sweep_backends

    sweep = sweep_backends([kernel_name],
                           pe_count_configs((16, 32, 64, 128, 256)),
                           iterations=256)
    rows = []
    for config_name in sweep.configs():
        point = sweep.point(kernel_name, config_name)
        if not point.accelerated:
            rows.append([config_name, "cpu-only", "-", "-", "-"])
            continue
        rows.append([
            config_name,
            f"{point.speedup:.2f}x",
            point.tile_factor,
            f"{point.utilization:.0%}",
            f"{point.iteration_latency:.1f}",
        ])
    print(render_table(["config", "speedup", "tile", "array util",
                        "iter latency"],
                       rows, title="PE-count sweep (8 memory ports)"))
    best = sweep.best_config(kernel_name)
    print(f"best configuration: {best.config_name} "
          f"({best.speedup:.2f}x)")

    # Sweep 2: interconnect topology at 128 PEs.
    print()
    rows = []
    for kind in InterconnectKind:
        config = replace(AcceleratorConfig(rows=16, cols=8, lsu_entries=32,
                                           memory_ports=8),
                         interconnect=kind)
        result = run_config(kernel_name, config)
        if result is None:
            continue
        rows.append([
            kind.value,
            f"{result.sdfg.predicted_latency:.1f}",
            f"{result.runs[0].iteration_latency:.1f}",
            f"{result.speedup_vs_single_core:.2f}x",
            len(result.sdfg.fallback_nodes),
        ])
    print(render_table(
        ["interconnect", "predicted iter lat", "measured iter lat",
         "speedup", "fallbacks"],
        rows, title="Interconnect sweep (128 PEs)"))

    print("\nReading: speedup saturates once tiling exhausts either the "
          "PE array or the memory system; the\nmesh+NoC hybrid tracks the "
          "better of its two parents on every kernel.")


if __name__ == "__main__":
    main()
