#!/usr/bin/env python3
"""Transparent offload of a Rodinia kernel, end to end.

Walks the hotspot stencil through every stage MESA performs in hardware and
shows the intermediate artifacts: the region-detection decision (C1-C3),
the logical DFG with renamed sources, the spatial placement as an ASCII map
of the PE array, the configuration bitstream, and the measured execution
with its per-node latency counters.

Run:  python examples/transparent_offload.py
"""

from repro import M_128, MesaController
from repro.accel import build_interconnect
from repro.core import SourceKind
from repro.isa import Executor
from repro.workloads import build_kernel


def main() -> None:
    kernel = build_kernel("hotspot", iterations=256)
    print(f"=== kernel: {kernel.name} — {kernel.description} ===")
    print(f"{len(kernel.program)} static instructions, "
          f"{kernel.iterations} iterations, "
          f"parallelizable={kernel.parallelizable}\n")

    controller = MesaController(M_128)
    result = controller.execute(kernel.program, kernel.state_factory,
                                parallelizable=kernel.parallelizable)

    decision = result.decision
    print("F1 — region detection:")
    print(f"  C1 size ok:    {decision.c1_size}")
    print(f"  C2 control ok: {decision.c2_control}")
    print(f"  C3 mix ok:     {decision.c3_mix} "
          f"(expected {decision.loop.expected_trip_count:.0f} iterations)\n")

    print("T1 — logical DFG (rename table view):")
    for entry in result.sdfg.ldfg.entries[:8]:
        def describe(ref):
            if ref.kind is SourceKind.NODE:
                return f"i{ref.node_id}"
            if ref.kind is SourceKind.LOOP_CARRIED:
                return f"i{ref.node_id}@prev({ref.register})"
            if ref.kind is SourceKind.LIVE_IN:
                return f"live-in({ref.register})"
            return "-"
        print(f"  i{entry.node_id:<3} {str(entry.instruction):<28} "
              f"s1={describe(entry.s1):<18} s2={describe(entry.s2)}")
    remaining = len(result.sdfg.ldfg) - 8
    if remaining > 0:
        print(f"  ... and {remaining} more\n")

    print("T2 — spatial placement (node ids on the 16x8 PE array; "
          "[..] = LSU entries at the edge):")
    print(result.sdfg.render_placement())

    interconnect = build_interconnect(M_128)
    critical = result.sdfg.critical_path(interconnect)
    print(f"\ncritical path: {' -> '.join(f'i{n}' for n in critical)}")
    print(f"predicted iteration latency: "
          f"{result.sdfg.predicted_latency:.1f} cycles")

    print(f"\nT3 — configuration: {result.bitstream_words} words, "
          f"{result.config_cost.total} cycles "
          f"(LDFG {result.config_cost.ldfg_build_cycles} + "
          f"imap {result.config_cost.mapping_cycles} + "
          f"write {result.config_cost.write_cycles})")

    # The Fig. 8 view: the imap FSM's per-stage timing for the first
    # instructions (REDUCE depth follows the candidate-matrix size).
    from repro.core import ImapFsm, InstructionMapper

    mapper = InstructionMapper(M_128)
    mapper.map(result.sdfg.ldfg)
    fsm_run = ImapFsm().simulate(mapper.stats.per_instruction_candidates)
    print("\nimap FSM timing diagram (Fig. 8 view):")
    print(fsm_run.timing_diagram(max_instructions=3))

    run = result.runs[0]
    print(f"\nexecution: {run.iterations} iterations on the fabric, "
          f"measured iteration latency {run.iteration_latency:.1f} cycles, "
          f"II {run.initiation_interval:.2f}")
    print(f"activity: {run.activity.int_ops} int ops, "
          f"{run.activity.fp_ops} FP ops, {run.activity.loads} loads, "
          f"{run.activity.stores} stores, {run.activity.noc_hops} NoC hops")

    print(f"\nspeedup vs single core: "
          f"{result.speedup_vs_single_core:.2f}x")

    # Cross-check against the pure ISA reference model.
    reference = kernel.fresh_state()
    Executor(kernel.program, reference).run(max_steps=1_000_000)
    assert kernel.verify(result.final_state), "accelerated result wrong!"
    assert kernel.verify(reference), "reference result wrong!"
    print("functional check: accelerated result matches the ISA reference")


if __name__ == "__main__":
    main()
