#!/usr/bin/env python3
"""Iterative runtime re-optimization (the paper's F3) made visible.

Builds a cache-hostile streaming loop whose memory latency the first
mapping can only guess, then lets MESA profile it on the fabric, fold the
measured per-instruction AMAT back into the DFG weights, and re-map.
Prints the model's node weights before and after refinement and the
optimizer's round-by-round decisions.

Run:  python examples/iterative_optimization.py
"""

from repro.accel import M_128, build_interconnect
from repro.core import (
    InstructionMapper,
    IterativeOptimizer,
    build_ldfg,
)
from repro.isa import MachineState, assemble, x
from repro.mem import Memory, MemoryHierarchy

# Two streams with very different locality: stream A strides over cache
# lines (misses), stream B re-reads one hot line (hits).  The initial AMAT
# estimate cannot know which is which.
LOOP_BODY = assemble("""
    loop:
        lw   t1, 0(a0)        # stream A: striding, misses to DRAM
        lw   t2, 0(a1)        # stream B: one hot line, L1 hits
        add  t3, t1, t2
        sw   t3, 0(a2)
        addi a0, a0, 256      # stride a full set: always cold
        addi a2, a2, 4
        addi t0, t0, -1
        bne  t0, zero, loop
""")


def state_factory() -> MachineState:
    state = MachineState(pc=LOOP_BODY.base_address)
    memory = Memory()
    memory.store_words(0x10000, list(range(8192)))
    memory.store_words(0x20000, [7] * 16)
    state.memory = memory
    state.write(x(10), 0x10000)
    state.write(x(11), 0x20000)
    state.write(x(12), 0x30000)
    state.write(x(5), 64)
    return state


def dump_weights(ldfg, title: str) -> None:
    print(title)
    for entry in ldfg.entries:
        if entry.instruction.is_memory:
            print(f"  i{entry.node_id} {str(entry.instruction):<18} "
                  f"weight = {entry.op_latency:5.1f} cycles")


def main() -> None:
    print("=== F3: iterative optimization from runtime counters ===\n")
    ldfg = build_ldfg(list(LOOP_BODY.instructions), initial_amat=4.0)
    dump_weights(ldfg, "initial DFG memory weights (blind estimate):")

    interconnect = build_interconnect(M_128)
    mapper = InstructionMapper(M_128, interconnect)
    first = mapper.map(ldfg)
    print(f"\nfirst mapping predicts {first.predicted_latency:.1f} "
          f"cycles/iteration")

    hierarchy = MemoryHierarchy()
    optimizer = IterativeOptimizer(M_128, interconnect=interconnect,
                                   improvement_threshold=0.02)
    best = optimizer.optimize(ldfg, first, state_factory, hierarchy,
                              rounds=3, profile_iterations=24)

    print()
    dump_weights(ldfg, "refined DFG memory weights (measured AMAT):")
    print("\noptimization rounds:")
    for event in optimizer.history:
        action = "remapped" if event.remapped else "kept mapping"
        print(f"  round {event.round_index}: measured "
              f"{event.measured_iteration_latency:6.1f} cyc/iter, "
              f"re-map would predict {event.predicted_after_remap:6.1f} "
              f"-> {action}")

    refined_model = best.to_dataflow_graph(interconnect)
    print(f"\nfinal model-predicted iteration latency (refined weights): "
          f"{refined_model.total_latency():.1f} cycles")
    miss_weight = ldfg[0].op_latency
    hit_weight = ldfg[1].op_latency
    print(f"\nThe model learned the two loads are different: the striding "
          f"load now weighs {miss_weight:.1f} cycles\nwhile the hot-line "
          f"load weighs {hit_weight:.1f} — knowledge no ahead-of-time "
          f"mapping could have had.")
    assert miss_weight > hit_weight


if __name__ == "__main__":
    main()
