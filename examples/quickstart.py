#!/usr/bin/env python3
"""Quickstart: transparently accelerate a loop with MESA.

Assembles a small RISC-V loop, runs it through the full MESA pipeline
(detection → translation → mapping → configuration → offload), and prints
what happened: the weighted-DFG latency table (the paper's Fig. 2 view),
the cycle breakdown, and the speedup over a single out-of-order core.

Run:  python examples/quickstart.py
"""

from repro import M_128, MesaController, assemble
from repro.accel import build_interconnect
from repro.isa import MachineState, x
from repro.mem import Memory

# A saxpy-like loop: y[i] = a*x[i] + y[i] over 300 elements.
PROGRAM = assemble("""
    addi t0, zero, 300        # trip count
    lui  a0, 16               # x[] at 0x10000
    lui  a1, 48               # y[] at 0x30000
    loop:
        flw    ft0, 0(a0)
        flw    ft1, 0(a1)
        fmul.s ft2, ft0, fa0  # a * x[i]
        fadd.s ft3, ft2, ft1
        fsw    ft3, 0(a1)
        addi   a0, a0, 4
        addi   a1, a1, 4
        addi   t0, t0, -1
        bne    t0, zero, loop
""")


def make_state() -> MachineState:
    state = MachineState(pc=PROGRAM.base_address)
    memory = Memory()
    memory.store_floats(0x10000, [float(i) for i in range(300)])
    memory.store_floats(0x30000, [1.0] * 300)
    state.memory = memory
    from repro.isa import f

    state.write(f(10), 2.0)  # fa0 = a
    return state


def main() -> None:
    controller = MesaController(M_128)
    result = controller.execute(PROGRAM, make_state, parallelizable=True)

    print("=== MESA quickstart: saxpy ===\n")
    print(f"accelerated: {result.accelerated} ({result.reason})")
    print(f"loop region: {result.decision.loop.start_address:#x}.."
          f"{result.decision.loop.end_address:#x}, "
          f"{result.decision.loop.body_instructions} instructions\n")

    # The weighted-DFG performance model (the paper's Fig. 2 latency table).
    interconnect = build_interconnect(M_128)
    model = result.sdfg.to_dataflow_graph(interconnect)
    print("Spatial DFG latency table (op latency, completion L_i, *critical):")
    print(model.latency_table())

    print(f"\nloop plan: {result.loop_plan.reason}, "
          f"pipelined={result.loop_plan.pipelined}")
    print(f"configuration: {result.config_cost.total} cycles "
          f"({result.config_cost.microseconds(2.0):.3f} us at 2 GHz), "
          f"{result.bitstream_words} bitstream words")

    b = result.breakdown
    print("\ncycle breakdown:")
    print(f"  CPU (pre-loop + warm-up + post-loop): {b.cpu_cycles:10.0f}")
    print(f"  offload (drain + state transfer):     {b.offload_cycles:10.0f}")
    print(f"  accelerator ({result.accel_iterations} iterations):"
          f"          {b.accel_cycles:10.0f}")
    print(f"  return to CPU:                        {b.return_cycles:10.0f}")
    print(f"  total:                                {result.total_cycles:10.0f}")
    print(f"\nsingle-core OoO baseline: {result.cpu_only.cycles} cycles")
    print(f"speedup: {result.speedup_vs_single_core:.2f}x")

    # Verify the result functionally: y[i] must equal 2*i + 1.
    memory = result.final_state.memory
    assert all(memory.load_float(0x30000 + 4 * i) == 2.0 * i + 1.0
               for i in range(300)), "wrong result!"
    print("\nfunctional check: all 300 outputs correct (y[i] = 2*x[i] + 1)")


if __name__ == "__main__":
    main()
