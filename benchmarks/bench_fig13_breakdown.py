"""Fig. 13: area, power, and energy breakdown by component.

Paper: "these results are averaged from four benchmarks (nn, kmeans,
hotspot, cfd).  Note that almost 87% of total energy is spent on either
memory or computation, with a small fraction on the control subsystem.
This is a desirable result as CPU instructions waste significant energy on
control overheads."
"""

from repro.harness import fig13_breakdown

from _common import ITERATIONS, emit, run_once


def test_fig13_component_breakdown(benchmark):
    result = run_once(benchmark,
                      lambda: fig13_breakdown(iterations=ITERATIONS))
    emit("fig13_breakdown", result.render())

    # The headline: memory + compute dominate steady-state energy.
    assert result.memory_plus_compute_energy > 0.7

    # Control is a small fraction of energy (the von Neumann contrast).
    assert result.energy_fractions["control"] < 0.1

    # Area is PE-array-dominated; power is memory+compute-dominated.
    assert result.area_fractions["compute"] > 0.4
    assert (result.power_fractions["compute"]
            + result.power_fractions["memory"]) > 0.7
