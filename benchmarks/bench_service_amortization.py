"""Service-level cache amortization under a Zipfian request mix.

The offload server's whole value proposition is that a *shared* config
cache amortizes MESA's translate/map/configure pipeline across clients:
the first request for a region pays the full cold path, every later
request for the same binary pays only the bitstream load.  This benchmark
replays a Zipfian(s=1.1) popularity stream — the classic skew of request
traces — over all 19 Rodinia kernels through an in-process
:class:`repro.service.MesaService` and reports:

* the shared-cache hit rate (asserted >= 80%: under Zipfian skew, all but
  the first touch of each region must be amortized);
* server-side p50/p99 for the cold vs warm execute paths (warm p50 is
  asserted below cold p50 — the amortization must be visible in latency,
  not just in counters);
* client-observed latency tiers: requests are bucketed *hot* / *warm* /
  *cold* by the popularity rank of their kernel, the way a trace analysis
  would slice a production service's logs;
* an interval snapshot (``stats_delta``) over the second half of the
  stream, demonstrating that steady-state hit rate exceeds the lifetime
  average once the cache is populated;
* a **kill → restart** phase: the service's checkpoint is flushed, the
  service is torn down, a fresh one warm-restores the snapshot and
  replays another wave — the post-restore steady-state hit rate must sit
  within 5 points of the pre-kill steady state, the persistence layer's
  acceptance bar.
"""

import asyncio
import statistics
import tempfile
from pathlib import Path

from repro.service import (
    ControllerPool,
    MesaService,
    OffloadRequest,
    popularity_tier,
    zipfian_stream,
)
from repro.workloads import kernel_names

from _common import emit, run_once

REQUESTS = 300
#: Requests replayed against the restored service after the kill.
REPLAY_REQUESTS = 150
ITERATIONS = 64
ZIPF_S = 1.1
SEED = 11
#: Post-restore steady-state hit rate must be within this many points of
#: the pre-kill steady state.
RESTORE_TOLERANCE = 0.05


def _quantile(samples, q):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = q * (len(ordered) - 1)
    return ordered[min(len(ordered) - 1, round(rank))]


async def _drive():
    kernels = kernel_names()  # list order doubles as popularity rank
    stream = zipfian_stream(kernels, REQUESTS + REPLAY_REQUESTS, s=ZIPF_S,
                            seed=SEED)
    stream, replay = stream[:REQUESTS], stream[REQUESTS:]
    with tempfile.TemporaryDirectory(prefix="mesa-bench-") as tmp:
        snapshot = str(Path(tmp) / "cache.snapshot.json")
        pool = ControllerPool(cache_capacity=64, cache_policy="lru")
        service = MesaService(pool=pool, max_queue=REQUESTS,
                              max_per_client=REQUESTS, workers=2,
                              checkpoint_path=snapshot)
        await service.start()

        first, second = stream[: REQUESTS // 2], stream[REQUESTS // 2:]
        responses = list(await asyncio.gather(*[
            service.offload(OffloadRequest.for_kernel(
                name, iterations=ITERATIONS, client="bench"))
            for name in first]))
        midpoint = service.stats()
        responses += list(await asyncio.gather(*[
            service.offload(OffloadRequest.for_kernel(
                name, iterations=ITERATIONS, client="bench"))
            for name in second]))
        steady = service.stats_delta(midpoint)
        stats = service.stats()
        # Kill: tear the service down (close also flushes the final
        # checkpoint — the regions survive on disk, nothing else does).
        await service.close()

        # Restart: a fresh pool, a fresh service, a warm snapshot.
        restored = MesaService(
            pool=ControllerPool(cache_capacity=64, cache_policy="lru"),
            max_queue=REPLAY_REQUESTS, max_per_client=REPLAY_REQUESTS,
            workers=2, checkpoint_path=snapshot)
        await restored.start()
        replay_responses = list(await asyncio.gather(*[
            restored.offload(OffloadRequest.for_kernel(
                name, iterations=ITERATIONS, client="bench"))
            for name in replay]))
        restart_stats = restored.stats()
        await restored.close()
    return (stream, responses, stats, steady, replay_responses,
            restart_stats)


def test_service_amortization(benchmark):
    (stream, responses, stats, steady, replay_responses,
     restart_stats) = run_once(benchmark, lambda: asyncio.run(_drive()))

    assert len(responses) == REQUESTS
    assert all(r.ok for r in responses), "every admitted request completes"

    # -- the amortization claims -------------------------------------------
    assert stats.hit_rate >= 0.80, (
        f"Zipfian reuse must amortize the config pipeline: "
        f"hit rate {stats.hit_rate:.1%} < 80%")
    cold = stats.histogram("execute_cold")
    warm = stats.histogram("execute_warm")
    assert cold.count > 0 and warm.count > 0
    assert warm.p50 < cold.p50, (
        f"warm-path p50 ({warm.p50 * 1e3:.1f} ms) must sit below cold-path "
        f"p50 ({cold.p50 * 1e3:.1f} ms)")
    assert steady.hit_rate >= stats.hit_rate, (
        "steady-state hit rate must not trail the lifetime average")

    # -- the persistence claim ---------------------------------------------
    assert all(r.ok for r in replay_responses)
    assert restart_stats.regions_restored > 0, (
        "the restart must warm-restore the shutdown checkpoint")
    restore_gap = steady.hit_rate - restart_stats.hit_rate
    assert restore_gap <= RESTORE_TOLERANCE, (
        f"post-restore steady-state hit rate "
        f"({restart_stats.hit_rate:.1%}) trails the pre-kill steady state "
        f"({steady.hit_rate:.1%}) by more than "
        f"{RESTORE_TOLERANCE:.0%}")

    # -- client-observed latency by popularity tier ------------------------
    # Tiered on the execute path: the batch submission above queues all
    # requests at once, so total_seconds is dominated by queue position
    # rather than by cache residency.
    kernels = kernel_names()
    tiers = {"hot": [], "warm": [], "cold": []}
    for name, response in zip(stream, responses):
        tiers[popularity_tier(kernels, name)].append(
            response.execute_seconds)
    queue_waits = [r.queue_seconds for r in responses]

    lines = [
        f"service amortization: {REQUESTS} requests, Zipf(s={ZIPF_S}) over "
        f"{len(kernels)} kernels, {ITERATIONS} iterations, workers=2",
        f"  cache:          hits={stats.cache.hits} "
        f"misses={stats.cache.misses} ({stats.hit_rate:.1%} hit rate)",
        f"  steady state:   {steady.hit_rate:.1%} hit rate over the last "
        f"{steady.completed} requests",
        f"  coalesced:      {stats.coalesced} requests piggybacked on an "
        f"in-flight translation",
        f"  server cold:    n={cold.count} p50={cold.p50 * 1e3:.1f}ms "
        f"p99={cold.p99 * 1e3:.1f}ms",
        f"  server warm:    n={warm.count} p50={warm.p50 * 1e3:.1f}ms "
        f"p99={warm.p99 * 1e3:.1f}ms",
        f"  queue wait:     p50={_quantile(queue_waits, 0.50):.2f}s "
        f"p99={_quantile(queue_waits, 0.99):.2f}s "
        f"(batch of {REQUESTS // 2} per wave, workers=2)",
        f"  kill-restart:   {restart_stats.regions_restored} regions "
        f"restored; replay of {len(replay_responses)} requests hit "
        f"{restart_stats.hit_rate:.1%} (pre-kill steady state "
        f"{steady.hit_rate:.1%})",
        "  client execute latency by popularity tier:",
    ]
    for tier in ("hot", "warm", "cold"):
        samples = tiers[tier]
        if not samples:
            lines.append(f"    {tier:<5} n=0")
            continue
        lines.append(
            f"    {tier:<5} n={len(samples):<4} "
            f"p50={_quantile(samples, 0.50) * 1e3:7.1f}ms "
            f"p99={_quantile(samples, 0.99) * 1e3:7.1f}ms "
            f"mean={statistics.fmean(samples) * 1e3:7.1f}ms")
    emit("service_amortization", "\n".join(lines))
