"""Ablation: backend interconnect choice.

MESA is interconnect-agnostic as long as point-to-point latency can be
modeled (§3.3).  This ablation maps the same kernels onto the three modeled
topologies and measures per-iteration latency on the engine: the evaluation
backend's mesh+NoC combination should never lose to the pure mesh (the NoC
is a strictly-faster fallback for long hauls), and the row-slice hierarchy
behaves differently for tall vs wide dataflow graphs.
"""

from dataclasses import replace

from repro.accel import InterconnectKind, M_128
from repro.core import MesaController
from repro.harness import render_table
from repro.workloads import build_kernel

from _common import emit, run_once

KERNELS = ("nn", "hotspot", "lavamd", "pathfinder")


def _iteration_latency(kind: InterconnectKind, kernel_name: str) -> float:
    config = replace(M_128, interconnect=kind)
    kernel = build_kernel(kernel_name, iterations=96)
    controller = MesaController(config)
    result = controller.execute(kernel.program, kernel.state_factory,
                                parallelizable=False)
    if not result.accelerated:
        return float("nan")
    return sum(r.iteration_latency for r in result.runs) / len(result.runs)


def run_ablation():
    rows = []
    for kernel_name in KERNELS:
        row = [kernel_name]
        for kind in (InterconnectKind.MESH, InterconnectKind.ROW_SLICE,
                     InterconnectKind.MESH_NOC):
            row.append(_iteration_latency(kind, kernel_name))
        rows.append(row)
    return rows


def test_interconnect_ablation(benchmark):
    rows = run_once(benchmark, run_ablation)
    emit("ablation_interconnect", render_table(
        ["kernel", "mesh", "row-slice", "mesh+NoC"], rows,
        title="Ablation: interconnect (per-iteration latency, cycles)"))

    for row in rows:
        kernel_name, mesh, row_slice, mesh_noc = row
        # The NoC fallback can only help: latency(mesh+NoC) <= latency(mesh).
        assert mesh_noc <= mesh * 1.001, kernel_name
        # All topologies produce working mappings.
        assert mesh > 0 and row_slice > 0 and mesh_noc > 0
