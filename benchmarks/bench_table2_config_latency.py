"""Table 2: configuration-latency comparison with related approaches.

Paper: "MESA's hardware configuration time is generally between 10^3 and
10^4 cycles, which places it in an interesting middle ground between
elaborate compiler-level approaches like DORA (milliseconds) and immediate
hardware approaches like DynaSpAM (nanoseconds)."
"""

from repro.baselines import DynaSpamConfig
from repro.harness import table2_config_latency

from _common import ITERATIONS, emit, run_once


def test_table2_config_latency(benchmark):
    result = run_once(benchmark,
                      lambda: table2_config_latency(iterations=ITERATIONS))
    emit("table2_config_latency", result.render())

    assert result.mesa_min_cycles > 0

    # The middle ground: above DynaSpAM's tens of cycles ...
    assert result.mesa_min_cycles > DynaSpamConfig().config_cycles

    # ... and squarely sub-microsecond-to-microsecond at 2 GHz, far below
    # DORA's milliseconds (10^6+ cycles).
    assert result.mesa_max_cycles < 100_000
    max_us = result.mesa_max_cycles / (result.frequency_ghz * 1000)
    assert max_us < 10.0

    # Warm re-encounters hit the configuration cache: the second execution
    # of every kernel pays only the bitstream load, strictly less than its
    # cold T1-T3 configuration, and the render gains a cached row.
    assert 0 < result.mesa_warm_min_cycles <= result.mesa_warm_max_cycles
    assert result.mesa_warm_max_cycles < result.mesa_max_cycles
    assert "MESA (cached)" in result.render()

    # Small hand-written kernels land short of the paper's largest regions;
    # the full 10^3-10^4 range needs a 64-512-instruction loop:
    from repro.accel import M_512
    from repro.core import InstructionMapper, build_ldfg, build_program
    from repro.core import configuration_cost
    from repro.accel import encode_bitstream
    from repro.isa import assemble

    lines = ["addi t0, zero, 1"]
    lines += [f"addi t{1 + i % 5}, t{i % 5}, 1" for i in range(254)]
    ldfg = build_ldfg(list(assemble("\n".join(lines)).instructions))
    sdfg = InstructionMapper(M_512).map(ldfg)
    words = encode_bitstream(build_program(sdfg))
    cost = configuration_cost(sdfg, len(words))
    assert 1e3 <= cost.total <= 1e4, (
        f"a 255-instruction region costs {cost.total} cycles")
