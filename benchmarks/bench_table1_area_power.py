"""Table 1: hardware area and power breakdown by component.

Regenerates the synthesis-results table for the 128-PE configuration (the
one the paper prints) and checks its headline invariants: MESA's controller
stays around half a square millimetre, the per-core additions are
negligible, and the accelerator totals match the reported 26.56 mm²/11.65 W.
"""

import pytest

from repro.accel import M_128, M_512, M_64
from repro.harness import table1_area_power

from _common import emit, run_once


def test_table1_m128(benchmark):
    result = run_once(benchmark, lambda: table1_area_power(M_128))
    emit("table1_m128", result.render())

    mesa_area, mesa_power = result.lookup("MESA Top")
    assert mesa_area == pytest.approx(0.502)
    assert mesa_power == pytest.approx(0.36)
    accel_area, accel_power = result.lookup("Accelerator Top (M-128)")
    assert accel_area == pytest.approx(26.56, rel=0.01)
    assert accel_power == pytest.approx(11.65, rel=0.01)


def test_table1_all_configs(benchmark):
    def build_all():
        return {cfg.name: table1_area_power(cfg)
                for cfg in (M_64, M_128, M_512)}

    tables = run_once(benchmark, build_all)
    emit("table1_all", "\n\n".join(t.render() for t in tables.values()))

    areas = [tables[name].lookup(f"Accelerator Top ({name})")[0]
             for name in ("M-64", "M-128", "M-512")]
    assert areas[0] < areas[1] < areas[2]
    # §6.2 quotes 16.4mm2 for the synthesized M-64.
    assert areas[0] == pytest.approx(16.4, rel=0.25)
