"""Fig. 14: M-64 against a single OoO core and DynaSpAM.

Paper: "M-64 with parallel optimizations achieves a speedup of 1.86x
compared to DynaSpAM's 1.42x, this increases to 2.01x with runtime
iterative reconfiguration.  Additionally, since DynaSpAM operates within
the core pipeline, there are benchmarks such as SRAD and B+Tree where the
kernel did not qualify for acceleration on MESA."
"""

from repro.harness import fig14_dynaspam

from _common import ITERATIONS, emit, run_once


def test_fig14_dynaspam_comparison(benchmark):
    result = run_once(benchmark,
                      lambda: fig14_dynaspam(iterations=ITERATIONS))
    emit("fig14_dynaspam", result.render())

    rows = {r["kernel"]: r for r in result.rows}

    # Both accelerate on average; MESA wins overall.
    assert result.mean("dynaspam_speedup") > 1.0
    assert result.mean("mesa_speedup") > result.mean("dynaspam_speedup")
    assert result.mean("mesa_iterative_speedup") >= result.mean("mesa_speedup")

    # SRAD and B+Tree disqualify on MESA (inner loops) but not on DynaSpAM.
    for name in ("srad", "btree"):
        assert not rows[name]["mesa_qualified"]
        assert rows[name]["mesa_speedup"] == 1.0
        assert rows[name]["dynaspam_speedup"] > 1.0

    # On the qualifying parallel kernels, MESA's 2-D array + tiling beats
    # the in-pipeline 1-D fabric.
    for name in ("nn", "kmeans", "hotspot"):
        assert rows[name]["mesa_speedup"] > rows[name]["dynaspam_speedup"]
