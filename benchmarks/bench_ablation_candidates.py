"""Ablation: candidate-window strategy for Algorithm 1.

The paper constrains the hardware candidate matrix to a fixed 4x8 window
"due to constraints" (§3.3).  This ablation quantifies the trade: the
unconstrained full-grid search evaluates an order of magnitude more
candidates (comparator area/time in hardware) for only a marginal mapping-
quality gain, while the enclosing-rectangle form (Eq. 3) sits in between.
"""

from repro.accel import M_128, build_interconnect
from repro.core import CandidateStrategy, InstructionMapper, MappingOptions, build_ldfg
from repro.harness import render_table
from repro.workloads import build_kernel

from _common import emit, run_once


def _map_with(strategy: CandidateStrategy, kernel_name: str):
    kernel = build_kernel(kernel_name, iterations=64)
    body = [i for i in kernel.program
            if i.address >= kernel.program.labels.get("loop", 0)]
    ldfg = build_ldfg(body)
    mapper = InstructionMapper(M_128,
                               options=MappingOptions(strategy=strategy))
    sdfg = mapper.map(ldfg)
    return sdfg.predicted_latency, mapper.stats.candidates_evaluated


def run_ablation():
    rows = []
    for kernel_name in ("lavamd", "hotspot", "cfd"):
        for strategy in CandidateStrategy:
            latency, evaluated = _map_with(strategy, kernel_name)
            rows.append([kernel_name, strategy.value, latency, evaluated])
    return rows


def test_candidate_window_ablation(benchmark):
    rows = run_once(benchmark, run_ablation)
    emit("ablation_candidates", render_table(
        ["kernel", "strategy", "predicted latency", "candidates evaluated"],
        rows, title="Ablation: candidate-matrix strategy"))

    by_key = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    for kernel_name in ("lavamd", "hotspot", "cfd"):
        fixed_lat, fixed_eval = by_key[(kernel_name, "fixed_window")]
        full_lat, full_eval = by_key[(kernel_name, "full_grid")]
        # The unconstrained search burns far more comparisons...
        assert full_eval > 2 * fixed_eval
        # ...for at most a marginal latency improvement.
        assert fixed_lat <= full_lat * 1.5, (
            f"{kernel_name}: the 4x8 window should stay near the "
            f"unconstrained mapping quality")


def _map_with_window(window, kernel_name: str):
    from repro.core import MappingOptions

    kernel = build_kernel(kernel_name, iterations=64)
    body = [i for i in kernel.program
            if i.address >= kernel.program.labels.get("loop", 0)]
    ldfg = build_ldfg(body)
    mapper = InstructionMapper(M_128, options=MappingOptions(window=window))
    sdfg = mapper.map(ldfg)
    return sdfg.predicted_latency, mapper.stats.candidates_evaluated


def test_window_size_sweep(benchmark):
    """Sweep the fixed window's dimensions: larger windows trade comparator
    count (hardware) for mapping quality; 4x8 is the paper's sweet spot."""
    windows = [(2, 2), (2, 4), (4, 4), (4, 8), (8, 8)]

    def sweep():
        rows = []
        for window in windows:
            for kernel_name in ("lavamd", "cfd"):
                latency, evaluated = _map_with_window(window, kernel_name)
                rows.append([f"{window[0]}x{window[1]}", kernel_name,
                             latency, evaluated])
        return rows

    rows = run_once(benchmark, sweep)
    emit("ablation_window_size", render_table(
        ["window", "kernel", "predicted latency", "candidates evaluated"],
        rows, title="Ablation: fixed-window dimensions"))

    by_key = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    for kernel_name in ("lavamd", "cfd"):
        latencies = [by_key[(f"{r}x{c}", kernel_name)][0]
                     for r, c in windows]
        # Mapping quality is insensitive to the window across this whole
        # range (the greedy latency objective converges locally)...
        assert max(latencies) <= min(latencies) * 1.15, kernel_name
        # ...so the comparator count is the real cost axis: 4x8 stays well
        # below 8x8, and tiny windows pay instead through full-grid
        # fallback scans (2x2 evaluates more than 4x4!).
        _, eval_2x2 = by_key[("2x2", kernel_name)]
        _, eval_4x4 = by_key[("4x4", kernel_name)]
        _, eval_4x8 = by_key[("4x8", kernel_name)]
        _, eval_8x8 = by_key[("8x8", kernel_name)]
        assert eval_4x8 <= eval_8x8
        assert eval_2x2 > eval_4x4, "fallbacks dominate tiny windows"
