"""Harness throughput: serial vs process-parallel sweep execution.

The simulator itself is single-threaded Python, so the harness's only
route to multi-core throughput is sharding: every ``(kernel, config)``
point of a sweep is an independent process-pool work unit
(:mod:`repro.harness.parallel`).  This benchmark times one 15-kernel
sweep twice — ``workers=1`` (the historical serial path) and
``workers=min(4, cpu_count)`` — asserts the two produce byte-identical
tables, and records both wall clocks under ``benchmarks/results/``.

The ≥2x speedup expectation only holds with real parallelism available,
so it is asserted when the host has at least 4 cores; on smaller boxes
(including 1-core CI runners, where the pool's pickling overhead makes
the parallel run *slower*) the numbers are still recorded for the
report, and the bit-identity assertion — the property that cannot
degrade gracefully — always runs.
"""

import os
import time

from repro.accel import M_128, M_64
from repro.harness import sweep_backends

from _common import WORKERS, emit, run_once

#: 15 Rodinia kernels (every kernel the harness ships minus the four
#: slowest outliers, keeping one benchmark run under a few minutes).
SWEEP_KERNELS = [
    "backprop", "bfs", "btree", "cfd", "gaussian", "hotspot", "hotspot3d",
    "kmeans", "lud", "myocyte", "nn", "nw", "pathfinder", "srad",
    "streamcluster",
]
SWEEP_ITERATIONS = 192


def test_parallel_sweep_matches_serial(benchmark):
    cores = os.cpu_count() or 1
    # At least 2 so the pooled path is what gets measured, even on one core.
    workers = max(WORKERS, 2, min(4, cores))

    start = time.perf_counter()
    serial = sweep_backends(SWEEP_KERNELS, [M_64, M_128],
                            iterations=SWEEP_ITERATIONS, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_once(
        benchmark,
        lambda: sweep_backends(SWEEP_KERNELS, [M_64, M_128],
                               iterations=SWEEP_ITERATIONS, workers=workers))
    parallel_seconds = time.perf_counter() - start

    serial_table = serial.render("speedup")
    parallel_table = parallel.render("speedup")
    assert parallel_table == serial_table, (
        "sharded sweep must merge to a byte-identical table")
    assert not parallel.degraded_points()

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    lines = [
        f"parallel sweep: {len(SWEEP_KERNELS)} kernels x 2 configs, "
        f"{SWEEP_ITERATIONS} iterations",
        f"  host cores:        {cores}",
        f"  serial   (workers=1):         {serial_seconds:8.2f} s",
        f"  parallel (workers={workers}):         {parallel_seconds:8.2f} s",
        f"  wall-clock speedup:           {speedup:8.2f}x",
        f"  tables byte-identical:        True",
    ]
    emit("parallel_sweep", "\n".join(lines) + "\n\n" + parallel_table)

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x sweep speedup on {cores} cores, got "
            f"{speedup:.2f}x")
