"""Harness throughput: serial vs process-parallel sweep execution.

The simulator itself is single-threaded Python, so the harness's only
route to multi-core throughput is sharding: the ``(kernel, config)`` grid
of a sweep is dispatched in chunks to a persistent pool of warm worker
processes (:mod:`repro.harness.parallel`).  This benchmark times one
15-kernel sweep at ``workers=1`` (the historical serial path) and
``workers=2`` — plus ``workers=4`` when the host has the cores for it —
asserts every pooled run produces a byte-identical table, and records the
wall clocks (with the host core count) under ``benchmarks/results/``.

Two scaling assertions guard against negative-scaling regressions landing
silently in a results file:

* on any host with ≥2 cores, ``workers=2`` must finish within 1.05x of
  the serial wall clock (warm pooling must at least not *hurt*);
* on hosts with ≥4 cores, ``workers=4`` must deliver ≥2x.

On a 1-core box the pooled numbers are still recorded for the report, and
the bit-identity assertion — the property that cannot degrade gracefully —
always runs.
"""

import time

from repro.accel import M_128, M_64
from repro.harness import sweep_backends

from _common import CORES, WORKERS, emit, run_once

#: 15 Rodinia kernels (every kernel the harness ships minus the four
#: slowest outliers, keeping one benchmark run under a few minutes).
SWEEP_KERNELS = [
    "backprop", "bfs", "btree", "cfd", "gaussian", "hotspot", "hotspot3d",
    "kmeans", "lud", "myocyte", "nn", "nw", "pathfinder", "srad",
    "streamcluster",
]
SWEEP_ITERATIONS = 192


def _timed_sweep(workers):
    start = time.perf_counter()
    result = sweep_backends(SWEEP_KERNELS, [M_64, M_128],
                            iterations=SWEEP_ITERATIONS, workers=workers)
    return result, time.perf_counter() - start


def test_parallel_sweep_matches_serial(benchmark):
    serial, serial_seconds = _timed_sweep(workers=1)
    serial_table = serial.render("speedup")

    # workers=2 is the scaling-sanity point CI asserts on; run it under
    # pytest-benchmark so the pooled path is what gets measured.
    start = time.perf_counter()
    pooled2 = run_once(benchmark, lambda: sweep_backends(
        SWEEP_KERNELS, [M_64, M_128], iterations=SWEEP_ITERATIONS,
        workers=2))
    pooled2_seconds = time.perf_counter() - start
    assert pooled2.render("speedup") == serial_table, (
        "sharded sweep must merge to a byte-identical table")
    assert not pooled2.degraded_points()

    rows = [(1, serial_seconds), (2, pooled2_seconds)]
    if CORES >= 4 and max(WORKERS, 4) >= 4:
        pooled4, pooled4_seconds = _timed_sweep(workers=4)
        assert pooled4.render("speedup") == serial_table
        assert not pooled4.degraded_points()
        rows.append((4, pooled4_seconds))

    lines = [
        f"parallel sweep: {len(SWEEP_KERNELS)} kernels x 2 configs, "
        f"{SWEEP_ITERATIONS} iterations",
        f"  host cores:        {CORES}",
    ]
    for workers, seconds in rows:
        speedup = serial_seconds / seconds if seconds else 0.0
        tag = "serial  " if workers == 1 else "parallel"
        lines.append(f"  {tag} (workers={workers}): {seconds:8.2f} s "
                     f"({speedup:5.2f}x)")
    lines.append("  tables byte-identical:        True")
    emit("parallel_sweep", "\n".join(lines) + "\n\n" + serial_table)

    if CORES >= 2:
        assert pooled2_seconds <= 1.05 * serial_seconds, (
            f"workers=2 must not scale negatively on {CORES} cores: "
            f"{pooled2_seconds:.2f}s vs {serial_seconds:.2f}s serial")
    if CORES >= 4 and len(rows) == 3:
        speedup4 = serial_seconds / rows[2][1]
        assert speedup4 >= 2.0, (
            f"expected >=2x sweep speedup at workers=4 on {CORES} cores, "
            f"got {speedup4:.2f}x")
