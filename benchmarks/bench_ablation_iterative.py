"""Ablation: iterative runtime re-optimization rounds (F3).

MESA's distinguishing feature over ahead-of-time mappers is the feedback
loop: measured per-node latencies refine the DFG weights and can trigger a
re-mapping.  This ablation sweeps the round budget and records the measured
iteration latency and how often the optimizer actually reconfigured.
"""

from repro.accel import M_128
from repro.core import MesaOptions
from repro.harness import ExperimentRunner, render_table

from _common import ITERATIONS, emit, run_once

KERNELS = ("nn", "cfd", "lavamd")
ROUNDS = (0, 1, 3)


def run_ablation():
    rows = []
    for name in KERNELS:
        cycles_by_rounds = {}
        remaps = 0
        for rounds in ROUNDS:
            runner = ExperimentRunner(iterations=ITERATIONS)
            options = MesaOptions(iterative_rounds=rounds)
            result = runner.mesa(name, M_128, options=options)
            cycles_by_rounds[rounds] = result.cycles
            if rounds == max(ROUNDS):
                mesa = result.details["mesa"]
                remaps = sum(1 for r in mesa.optimizer_history if r.remapped)
        rows.append([name] + [cycles_by_rounds[r] for r in ROUNDS] + [remaps])
    return rows


def test_iterative_ablation(benchmark):
    rows = run_once(benchmark, run_ablation)
    emit("ablation_iterative", render_table(
        ["kernel"] + [f"cycles ({r} rounds)" for r in ROUNDS] + ["remaps"],
        rows, title="Ablation: iterative re-optimization rounds"))

    for row in rows:
        name, base, one, three, _remaps = row
        # More optimization rounds never lose more than noise: the
        # hysteresis keeps known-good mappings.
        assert one <= base * 1.1, name
        assert three <= one * 1.1, name
