"""Fig. 15: MESA performance scaling with PE count (nn kernel).

Paper: "The tested kernel (Euclidean distance) is small enough to fit on
just 16 PEs and we observe near-perfect scaling until memory bottlenecks
beyond 128 PEs for this spatial accelerator.  'Ideal Memory' assumes a
scenario with infinite memory ports."
"""

import pytest

from repro.harness import fig15_pe_scaling

from _common import WORKERS, emit, run_once


def test_fig15_pe_scaling(benchmark):
    result = run_once(benchmark,
                      lambda: fig15_pe_scaling(workers=WORKERS))
    emit("fig15_pe_scaling", result.render())

    by_pes = dict(zip(result.pe_counts, result.default_speedup))
    ideal_mem = dict(zip(result.pe_counts, result.ideal_memory_speedup))

    # Near-perfect scaling up to 128 PEs (within 20% of ideal).
    for pes in (32, 64, 128):
        ideal = pes / result.pe_counts[0]
        assert by_pes[pes] > 0.8 * ideal, f"{pes} PEs scale poorly"

    # Memory bottleneck beyond 128 PEs: the default curve flattens ...
    assert by_pes[256] < by_pes[128] * 1.15
    assert by_pes[512] < by_pes[128] * 1.15

    # ... while ideal memory keeps scaling past it.
    assert ideal_mem[256] > by_pes[256] * 1.3
    assert ideal_mem[512] > ideal_mem[256]

    # Monotone non-decreasing overall.
    for earlier, later in zip(result.default_speedup,
                              result.default_speedup[1:]):
        assert later >= earlier * 0.95
