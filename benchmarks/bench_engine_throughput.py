"""Engine throughput: fabric iterations per host-second, per kernel.

This benchmark measures the *simulator*, not the modeled hardware: how fast
the dataflow engine retires fabric iterations now that execution runs off a
compiled :class:`repro.accel.plan.ExecutionPlan` instead of re-interpreting
the configuration every iteration.  It reports, per kernel:

* iterations/second on the batched path (``batch=True`` — vectorized
  blocks of iterations, ``repro.accel.batch``), where the plan's
  capability analysis accepts the kernel;
* iterations/second on the scalar plan-compiled path (``batch=False``);
* iterations/second on the reference interpreter path (``compiled=False``);
* the batched-over-scalar and scalar-over-interpreter speedups (all three
  paths are bit-identical — see ``tests/accel/test_plan_equivalence.py``
  and ``tests/accel/test_batch_equivalence.py``).

It also times the full Fig. 11 pipeline end-to-end and records it against
the pre-plan baseline wall clock, which is the headline number for this
optimization round.
"""

from __future__ import annotations

import dataclasses
import time

from repro.accel import DataflowEngine, M_128
from repro.core import MesaController
from repro.harness import fig11_rodinia
from repro.workloads import build_kernel

from _common import ITERATIONS, emit, run_once

#: Wall clock of ``fig11_rodinia(iterations=384)`` on the reference machine
#: before the execution-plan work (interpreted engine, per-call trace
#: collection and CPU-model runs).
PRE_PLAN_FIG11_SECONDS = 9.70

KERNELS = ("hotspot", "cfd", "kmeans", "nn", "backprop", "pathfinder",
           "streamcluster", "nw", "lavamd", "myocyte")

#: Kernels whose plan the batched capability analysis must accept at M-128;
#: a silent fallback to the scalar loop here is a regression.  The set now
#: includes the three formerly-fallback families: contended NoC rings
#: (kmeans, lavamd — closed-form grant chain), guarded memory
#: (streamcluster — masked gathers), and coupled recurrences (nw, myocyte
#: — sequential microloop clusters).
BATCHABLE = {"hotspot", "cfd", "nn", "backprop", "pathfinder", "kmeans",
             "streamcluster", "nw", "lavamd", "myocyte"}

_REPORT: list[str] = []


def _offload_setup(name: str):
    """Run the pipeline once; return the configured engine + entry states."""
    kernel = build_kernel(name, iterations=512, seed=1)
    controller = MesaController(M_128)
    result = controller.execute(kernel.program, kernel.state_factory,
                                parallelizable=kernel.parallelizable)
    assert result.accelerated, f"{name} must offload for this benchmark"
    options = result.loop_plan.to_execution_options()

    def entry_state():
        return controller._state_at_loop_entry(
            kernel.program, result.decision, kernel.state_factory(),
            4_000_000)

    return result.accel_program, controller.interconnect, options, entry_state


def _iterations_per_second(engine: DataflowEngine, options,
                           entry_state, repeats: int = 3):
    best = float("inf")
    iterations = 0
    drive = ""
    for _ in range(repeats):
        state = entry_state()
        start = time.perf_counter()
        run = engine.run(state, options)
        best = min(best, time.perf_counter() - start)
        iterations = run.iterations
        drive = run.drive_path
    return iterations / best, drive


def test_engine_throughput(benchmark):
    rows = ["engine throughput (fabric iterations / host second, M-128):",
            f"  {'kernel':<13} {'batched':>10} {'compiled':>10} "
            f"{'interpreted':>12} {'bat/com':>8} {'com/int':>8}  drive"]
    scalar_ratios = []
    batch_ratios = []
    prepared = {name: _offload_setup(name) for name in KERNELS}

    def measured():
        results = {}
        for name, (program, interconnect, options, entry) in prepared.items():
            fast = DataflowEngine(program, interconnect=interconnect)
            slow = DataflowEngine(program, interconnect=interconnect,
                                  compiled=False)
            batched_ips, drive = _iterations_per_second(
                fast, dataclasses.replace(options, batch=True), entry)
            scalar_ips, _ = _iterations_per_second(
                fast, dataclasses.replace(options, batch=False), entry)
            interp_ips, _ = _iterations_per_second(slow, options, entry)
            results[name] = (batched_ips, scalar_ips, interp_ips, drive)
        return results

    results = run_once(benchmark, measured)
    for name, (batched_ips, scalar_ips, interp_ips, drive) in results.items():
        batch_ratio = batched_ips / scalar_ips
        scalar_ratio = scalar_ips / interp_ips
        rows.append(f"  {name:<13} {batched_ips:>10.0f} {scalar_ips:>10.0f} "
                    f"{interp_ips:>12.0f} {batch_ratio:>7.2f}x "
                    f"{scalar_ratio:>7.2f}x  {drive}")
        scalar_ratios.append(scalar_ratio)
        if name in BATCHABLE:
            # A capability-analysis regression must fail loudly, not just
            # show up as a slower row.
            assert drive == "batched", (name, drive)
            batch_ratios.append(batch_ratio)
    _REPORT.extend(rows)

    # The compiled path must not lose to the interpreter on any kernel;
    # the batched path must not lose to the scalar loop on any batchable
    # kernel (including the newly admitted guarded/recurrence/NoC
    # families — the microloop kernels have the thinnest margin), with
    # >=3x on at least 3 kernels.
    assert all(ratio > 1.0 for ratio in scalar_ratios), scalar_ratios
    assert all(ratio > 1.0 for ratio in batch_ratios), batch_ratios
    assert sum(ratio >= 3.0 for ratio in batch_ratios) >= 3, batch_ratios


def test_fig11_wall_clock(benchmark):
    start = time.perf_counter()
    result = run_once(benchmark, lambda: fig11_rodinia(iterations=ITERATIONS))
    wall = time.perf_counter() - start
    assert result.rows, "fig11 produced no rows"

    _REPORT.append("")
    _REPORT.append(f"fig11_rodinia(iterations={ITERATIONS}) end-to-end "
                   "wall clock:")
    _REPORT.append(f"  pre-plan baseline: {PRE_PLAN_FIG11_SECONDS:.2f} s")
    _REPORT.append(f"  this run:          {wall:.2f} s "
                   f"({PRE_PLAN_FIG11_SECONDS / wall:.2f}x)")
    emit("engine_throughput", "\n".join(_REPORT))
