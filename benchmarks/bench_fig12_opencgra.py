"""Fig. 12: per-iteration IPC against the OpenCGRA compiler baseline.

Paper: "in terms of purely scheduling the operation, MESA falls slightly
behind in most benchmarks.  This is not a surprise as compiler methods are
more complex and expected to generate a better configuration.  However, MESA
with optimizations enabled easily outperforms OpenCGRA, largely due to
enabling loop parallelization."
"""

from repro.harness import fig12_opencgra

from _common import ITERATIONS, emit, run_once


def test_fig12_ipc_comparison(benchmark):
    result = run_once(benchmark,
                      lambda: fig12_opencgra(iterations=ITERATIONS))
    emit("fig12_opencgra", result.render())

    behind = sum(1 for r in result.rows
                 if r["mesa_unopt_ipc"] <= r["opencgra_ipc"])
    assert behind >= len(result.rows) * 0.75, (
        "unoptimized MESA should fall (slightly) behind the compiler "
        "in most benchmarks")

    # With optimizations the parallelizable kernels overtake OpenCGRA.
    parallel_rows = [r for r in result.rows
                     if r["kernel"] not in ("backprop", "lud")]
    ahead = sum(1 for r in parallel_rows
                if r["mesa_opt_ipc"] > r["opencgra_ipc"])
    assert ahead >= len(parallel_rows) * 0.75, (
        "optimized MESA should outperform OpenCGRA on the parallel kernels")

    # The gap when behind is modest; the gap when ahead is large.
    for r in result.rows:
        if r["mesa_unopt_ipc"] <= r["opencgra_ipc"]:
            assert r["mesa_unopt_ipc"] > 0.3 * r["opencgra_ipc"], (
                f"{r['kernel']}: 'slightly behind', not collapsed")
