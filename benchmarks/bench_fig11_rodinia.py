"""Fig. 11: performance and energy efficiency vs the 16-core CPU baseline.

Paper: "MESA achieves 1.33x and 1.81x performance gains across all
benchmarks for the two configurations [M-128, M-512] ... this average is
held back by memory or control-heavy benchmarks like BFS ... In terms of
energy efficiency, M-128 and M-512 averaged 1.86x and 1.92x improvement."

Shape checks: MESA wins on average in both metrics; the compute-parallel
kernels (nn, kmeans, gaussian) win clearly; the kernels that do not qualify
(srad, btree) lose to the scaling multicore and drag the mean down; M-512
performs at least as well as M-128 on average but similarly on many kernels
(the paper: "PEs in M-512 are underutilized yielding a result similar to
the smaller configuration").
"""

from repro.harness import fig11_rodinia

from _common import ITERATIONS, WORKERS, emit, run_once


def test_fig11_speedup_and_efficiency(benchmark):
    result = run_once(benchmark, lambda: fig11_rodinia(iterations=ITERATIONS,
                                                       workers=WORKERS))
    emit("fig11_rodinia", result.render())

    rows = {r["kernel"]: r for r in result.rows}

    # Headline: MESA beats the multicore on average, in perf and energy.
    assert result.mean_speedup["m128"] > 1.0
    assert result.mean_speedup["m512"] >= result.mean_speedup["m128"]
    assert result.mean_efficiency["m128"] > 1.0
    assert result.mean_efficiency["m512"] > 1.0

    # Compute-parallel kernels are clear wins.
    for name in ("nn", "kmeans", "gaussian"):
        assert rows[name]["speedup_m128"] > 1.0, name

    # Non-qualifying control kernels lose to the scaling multicore and hold
    # the average back (the paper's BFS observation, strongest form).
    for name in ("srad", "btree"):
        assert not rows[name]["accelerated_m128"]
        assert rows[name]["speedup_m128"] < 1.0

    # The serial recurrence kernel cannot beat even one strong core by much.
    assert rows["myocyte"]["speedup_m128"] < 1.5
