"""Throughput scaling of the multi-process execution backend.

The thread backend shares one configuration cache but is GIL-bound: four
executor threads still simulate one kernel at a time, so service
throughput is flat in ``--workers``.  The supervised process pool
(:class:`repro.service.ProcessWorkerPool`) is the scaling story — N
worker *processes* simulate N requests genuinely in parallel, with
sticky region→worker affinity keeping per-worker caches warm.

This benchmark drives the same request wave through both backends at
``workers=4`` and reports requests/second.  On hosts with at least 4
physical cores the process backend must clear **1.5x** the thread
backend's throughput (the acceptance bar; in practice it lands near the
core count).  On smaller hosts the numbers are still recorded, but the
assertion is skipped — without real cores behind the workers the
comparison measures scheduler noise, not scaling.
"""

import asyncio
import time

from repro.service import ControllerPool, MesaService, OffloadRequest
from repro.workloads import build_kernel  # noqa: F401  (warm import)

from _common import CORES, emit, run_once

WORKERS = 4
REQUESTS = 24
ITERATIONS = 256
#: Accelerating kernels with meaty per-request simulation time.
KERNELS = ("hotspot", "pathfinder", "nn", "kmeans")
#: Acceptance bar for the process backend on a >=4-core host.
MIN_SCALING = 1.5


async def _drive(execution: str) -> tuple[float, int]:
    """One timed wave; returns (wall_seconds, completed)."""
    service = MesaService(pool=ControllerPool(),
                          max_queue=REQUESTS + len(KERNELS),
                          max_per_client=REQUESTS + len(KERNELS),
                          workers=WORKERS, execution=execution)
    await service.start()
    # Warm-up wave: one request per kernel populates the caches (the
    # shared cache for threads, each sticky worker's cache for
    # processes) so the timed wave compares steady-state throughput.
    warmup = await asyncio.gather(*[
        service.offload(OffloadRequest.for_kernel(
            name, iterations=ITERATIONS, client="warmup"))
        for name in KERNELS])
    assert all(r.ok for r in warmup)
    begin = time.perf_counter()
    responses = await asyncio.gather(*[
        service.offload(OffloadRequest.for_kernel(
            KERNELS[index % len(KERNELS)], iterations=ITERATIONS,
            client="bench"))
        for index in range(REQUESTS)])
    wall = time.perf_counter() - begin
    await service.close()
    completed = sum(1 for r in responses if r.ok)
    assert completed == REQUESTS, "every request completes"
    return wall, completed


def _run_both() -> dict[str, float]:
    thread_wall, _ = asyncio.run(_drive("thread"))
    process_wall, _ = asyncio.run(_drive("process"))
    return {"thread": REQUESTS / thread_wall,
            "process": REQUESTS / process_wall}


def test_service_procpool_scaling(benchmark):
    throughput = run_once(benchmark, _run_both)
    scaling = throughput["process"] / throughput["thread"]
    gated = CORES >= 4

    lines = [
        f"service execution backends: {REQUESTS} requests over "
        f"{len(KERNELS)} kernels, {ITERATIONS} iterations, "
        f"workers={WORKERS}, host cores={CORES}",
        f"  thread backend:  {throughput['thread']:6.2f} req/s "
        f"(GIL-bound; shared cache)",
        f"  process backend: {throughput['process']:6.2f} req/s "
        f"(supervised pool; sticky per-worker caches)",
        f"  scaling:         {scaling:.2f}x "
        + (f"(assertion: >= {MIN_SCALING}x on this {CORES}-core host)"
           if gated else
           f"(informational only: {CORES} core(s) < 4, "
           f"assertion skipped)"),
    ]
    emit("service_procpool", "\n".join(lines))

    if gated:
        assert scaling >= MIN_SCALING, (
            f"process backend must scale on a {CORES}-core host: "
            f"{scaling:.2f}x < {MIN_SCALING}x")
