"""Ablation: the §4.2 memory optimizations.

Store-load forwarding, load vectorization, and induction prefetching are
each claimed to reduce memory pressure.  This ablation runs memory-heavy
kernels with the pass disabled and enabled and compares accelerated-region
cycles and energy.
"""

from repro.accel import M_128
from repro.core import MesaOptions
from repro.harness import ExperimentRunner, render_table

from _common import ITERATIONS, emit, run_once

KERNELS = ("nn", "hotspot", "hotspot3d", "kmeans")


def run_ablation():
    rows = []
    for name in KERNELS:
        runner = ExperimentRunner(iterations=ITERATIONS)
        without = runner.mesa(name, M_128, options=MesaOptions(memopt=False))
        runner = ExperimentRunner(iterations=ITERATIONS)
        with_opt = runner.mesa(name, M_128, options=MesaOptions(memopt=True))
        rows.append([
            name,
            without.cycles, with_opt.cycles,
            without.cycles / with_opt.cycles,
            without.energy_pj / max(1e-9, with_opt.energy_pj),
        ])
    return rows


def test_memopt_ablation(benchmark):
    rows = run_once(benchmark, run_ablation)
    emit("ablation_memopt", render_table(
        ["kernel", "cycles (off)", "cycles (on)", "speedup", "energy ratio"],
        rows, title="Ablation: memory optimizations (§4.2)"))

    speedups = {row[0]: row[3] for row in rows}
    # The optimizations never hurt...
    for name, speedup in speedups.items():
        assert speedup >= 0.98, f"{name}: memopt regressed performance"
    # ...and vectorizable/prefetchable streaming kernels gain measurably.
    assert max(speedups.values()) > 1.05, (
        "at least one kernel should show a real memopt gain")
