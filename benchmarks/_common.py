"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation section: it runs the experiment once under ``pytest-benchmark``
(timing the full pipeline), prints the same rows/series the paper reports,
and writes them to ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Iteration count used by the experiment drivers.  Large enough for the
#: configuration cost to amortize, small enough for a quick benchmark run.
ITERATIONS = 384

#: Shard workers for the experiment drivers.  Default 1 (serial) so every
#: benchmark stays reproducible on any box; export REPRO_BENCH_WORKERS to
#: fan the sweeps out over a process pool (output is identical either way).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Physical parallelism of the host — scaling assertions only make sense
#: when real cores back the worker processes, so benchmarks gate on this
#: and record it next to their numbers.
CORES = os.cpu_count() or 1


def emit(name: str, text: str) -> None:
    """Print a rendered result and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
