"""Fig. 16: per-iteration energy amortization of the configuration cost.

Paper: "Initially, the sunk cost of configuration dominates [and]
drastically raises per-iteration energy, however, [it] amortizes over time
to around 70 iterations."
"""

from repro.harness import fig16_amortization

from _common import emit, run_once


def test_fig16_energy_amortization(benchmark):
    result = run_once(benchmark, fig16_amortization)
    emit("fig16_amortization", result.render())

    series = result.energy_per_iteration_nj

    # Strictly decreasing toward the steady state.
    for earlier, later in zip(series, series[1:]):
        assert later < earlier

    # The first iteration pays an order of magnitude over steady state.
    assert series[0] > 10 * result.steady_state_nj

    # Break-even lands in the paper's 50-100 iteration window.
    breakeven = result.breakeven_iterations
    assert breakeven is not None
    assert 20 <= breakeven <= 150, f"break-even at {breakeven} iterations"

    # The tail approaches steady state closely.
    assert series[-1] < 1.2 * result.steady_state_nj

    # Warm re-encounter (configuration-cache hit): only the bitstream load
    # is sunk again, so every checkpoint amortizes at least as fast and
    # break-even comes no later than the cold path's.
    warm = result.warm_energy_per_iteration_nj
    assert len(warm) == len(series)
    for cold_point, warm_point in zip(series, warm):
        assert warm_point <= cold_point
    assert warm[0] < series[0], "the warm first iteration must be cheaper"
    warm_breakeven = result.warm_breakeven_iterations
    assert warm_breakeven is not None and warm_breakeven <= breakeven
